#include "model/transformer.h"

#include <cmath>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "model/profiler.h"
#include "support/rng.h"
#include "vlp/vlp_approximator.h"

namespace mugi {
namespace model {
namespace {

ModelConfig
tiny_llama()
{
    return llama2_7b().scaled_for_eval(2, 32, 64);
}

ModelConfig
tiny_whisper()
{
    return whisper_tiny().scaled_for_eval(2, 32, 64);
}

TEST(Transformer, ForwardShapes)
{
    const ModelConfig config = tiny_llama();
    const TransformerModel model(config, 7);
    const std::vector<int> tokens = {1, 5, 9, 2};
    const support::MatrixF logits = model.forward_tokens(tokens);
    EXPECT_EQ(logits.rows(), 4u);
    EXPECT_EQ(logits.cols(), config.vocab);
    for (const float v : logits.data()) {
        EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(Transformer, DeterministicForSameSeed)
{
    const ModelConfig config = tiny_llama();
    const TransformerModel a(config, 42);
    const TransformerModel b(config, 42);
    const std::vector<int> tokens = {3, 1, 4, 1, 5};
    EXPECT_EQ(a.forward_tokens(tokens).data(),
              b.forward_tokens(tokens).data());
}

TEST(Transformer, DifferentSeedsDiffer)
{
    const ModelConfig config = tiny_llama();
    const TransformerModel a(config, 1);
    const TransformerModel b(config, 2);
    const std::vector<int> tokens = {3, 1, 4};
    EXPECT_NE(a.forward_tokens(tokens).data(),
              b.forward_tokens(tokens).data());
}

TEST(Transformer, CausalityHolds)
{
    // Changing a later token must not affect earlier logits in a
    // causal (llama) model.
    const ModelConfig config = tiny_llama();
    const TransformerModel model(config, 11);
    const std::vector<int> t1 = {2, 7, 1, 9};
    const std::vector<int> t2 = {2, 7, 1, 30};
    const support::MatrixF l1 = model.forward_tokens(t1);
    const support::MatrixF l2 = model.forward_tokens(t2);
    for (std::size_t t = 0; t < 3; ++t) {
        for (std::size_t v = 0; v < config.vocab; ++v) {
            EXPECT_EQ(l1.at(t, v), l2.at(t, v)) << t << "," << v;
        }
    }
    // The final position must differ (different input).
    bool differs = false;
    for (std::size_t v = 0; v < config.vocab; ++v) {
        if (l1.at(3, v) != l2.at(3, v)) differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Transformer, BidirectionalFamilySeesFuture)
{
    const ModelConfig config = tiny_whisper();
    const TransformerModel model(config, 11);
    const std::vector<int> t1 = {2, 7, 1, 9};
    const std::vector<int> t2 = {2, 7, 1, 30};
    const support::MatrixF l1 = model.forward_tokens(t1);
    const support::MatrixF l2 = model.forward_tokens(t2);
    bool first_position_differs = false;
    for (std::size_t v = 0; v < config.vocab; ++v) {
        if (l1.at(0, v) != l2.at(0, v)) first_position_differs = true;
    }
    EXPECT_TRUE(first_position_differs);
}

TEST(Transformer, DecodeMatchesFullForward)
{
    // Incremental KV-cached decode must reproduce the full forward
    // pass logits at every position (float cache).
    const ModelConfig config = tiny_llama();
    const TransformerModel model(config, 23);
    const std::vector<int> tokens = {4, 8, 15, 16, 23};
    const support::MatrixF full = model.forward_tokens(tokens);

    DecodeSession session(model, quant::KvPrecision::kFloat);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
        const std::vector<float> logits = session.step(tokens[t]);
        ASSERT_EQ(logits.size(), config.vocab);
        for (std::size_t v = 0; v < config.vocab; ++v) {
            EXPECT_NEAR(logits[v], full.at(t, v), 2e-3f)
                << "t=" << t << " v=" << v;
        }
    }
}

TEST(Transformer, BatchedDecodeLayerMatchesSequentialPerRow)
{
    // decode_layer_batch must reproduce decode_layer row by row for
    // both families: gated/RoPE/RMSNorm (llama) and plain
    // FFN/LayerNorm without RoPE (whisper), at heterogeneous
    // positions and mixed KV precisions.
    for (const ModelConfig& config : {tiny_llama(), tiny_whisper()}) {
        const TransformerModel model(config, 99);
        const std::size_t batch = 3;
        const quant::KvPrecision precisions[] = {
            quant::KvPrecision::kFloat, quant::KvPrecision::kInt4,
            quant::KvPrecision::kFloat};

        // Warm each lane's layer-0 cache to a different depth.
        std::vector<quant::KvCache> batched_caches;
        std::vector<quant::KvCache> seq_caches;
        for (std::size_t i = 0; i < batch; ++i) {
            batched_caches.emplace_back(config.num_kv_heads,
                                        config.head_dim(),
                                        precisions[i]);
            seq_caches.emplace_back(config.num_kv_heads,
                                    config.head_dim(), precisions[i]);
        }
        support::MatrixF x(batch, config.d_model);
        std::mt19937 rng(1234);
        support::fill_gaussian(x, rng, 0.0f, 1.0f);
        for (std::size_t i = 0; i < batch; ++i) {
            for (std::size_t warm = 0; warm < i + 1; ++warm) {
                support::MatrixF one(1, config.d_model);
                support::fill_gaussian(one, rng, 0.0f, 1.0f);
                // Same warm stream into both twins' caches.
                model.decode_layer(0, one, batched_caches[i]);
                model.decode_layer(0, one, seq_caches[i]);
            }
        }

        const NonlinearHooks hooks{};
        std::vector<quant::KvCache*> cache_ptrs;
        std::vector<const NonlinearHooks*> hook_ptrs;
        for (std::size_t i = 0; i < batch; ++i) {
            cache_ptrs.push_back(&batched_caches[i]);
            hook_ptrs.push_back(&hooks);
        }
        const support::MatrixF batched =
            model.decode_layer_batch(0, x, cache_ptrs, hook_ptrs);

        for (std::size_t i = 0; i < batch; ++i) {
            support::MatrixF row(1, config.d_model);
            for (std::size_t c = 0; c < config.d_model; ++c) {
                row.at(0, c) = x.at(i, c);
            }
            const support::MatrixF expected =
                model.decode_layer(0, row, seq_caches[i], hooks);
            for (std::size_t c = 0; c < config.d_model; ++c) {
                EXPECT_EQ(batched.at(i, c), expected.at(0, c))
                    << config.name << " row " << i << " col " << c;
            }
        }
    }
}

TEST(Transformer, BatchedDecodeSeesLiveWeightMutations)
{
    // The batched path reads the layer's weights at call time, so a
    // post-construction apply_woq (as examples/llm_inference does
    // after building its Engine) affects fused and sequential decode
    // identically.
    const ModelConfig config = tiny_llama();
    TransformerModel model(config, 7);
    quant::KvCache batched_cache(config.num_kv_heads,
                                 config.head_dim(),
                                 quant::KvPrecision::kFloat);
    quant::KvCache seq_cache(config.num_kv_heads, config.head_dim(),
                             quant::KvPrecision::kFloat);
    model.apply_woq(16);

    support::MatrixF x(1, config.d_model);
    std::mt19937 rng(55);
    support::fill_gaussian(x, rng, 0.0f, 1.0f);
    const NonlinearHooks hooks{};
    quant::KvCache* caches[] = {&batched_cache};
    const NonlinearHooks* hook_ptrs[] = {&hooks};
    const support::MatrixF batched =
        model.decode_layer_batch(0, x, caches, hook_ptrs);
    const support::MatrixF expected =
        model.decode_layer(0, x, seq_cache, hooks);
    EXPECT_TRUE(batched == expected);
}

TEST(Transformer, KvqDecodeStaysClose)
{
    const ModelConfig config = tiny_llama();
    const TransformerModel model(config, 29);
    const std::vector<int> tokens = {4, 8, 15, 16, 23, 42};

    DecodeSession exact(model, quant::KvPrecision::kFloat);
    DecodeSession kvq(model, quant::KvPrecision::kInt4);
    for (const int t : tokens) {
        const auto le = exact.step(t);
        const auto lq = kvq.step(t);
        // KVQ perturbs logits but must stay in the same regime
        // (Sec. 2.3.3: ~0.02 PPL increase at model scale).
        double dot = 0.0, ne = 0.0, nq = 0.0;
        for (std::size_t v = 0; v < le.size(); ++v) {
            dot += le[v] * lq[v];
            ne += le[v] * le[v];
            nq += lq[v] * lq[v];
        }
        EXPECT_GT(dot / std::sqrt(ne * nq), 0.98);
    }
    // Compression under the exact device accounting: 4*hd bytes
    // (float) vs (hd+1)/2 + 2 bytes (INT4 + scale) per vector; with
    // hd = 8 that is 32 vs 6 bytes.  Both caches page identically
    // (same length, same block count), so the ratio is exact.
    const std::size_t hd = config.head_dim();
    const double expected_ratio =
        static_cast<double>(sizeof(float) * hd) /
        static_cast<double>((hd + 1) / 2 + 2);
    const double ratio = static_cast<double>(exact.kv_bytes()) /
                         static_cast<double>(kvq.kv_bytes());
    EXPECT_NEAR(ratio, expected_ratio, 0.01);
}

TEST(Transformer, WoqPerturbsButPreservesScale)
{
    const ModelConfig config = tiny_llama();
    TransformerModel model(config, 31);
    const std::vector<int> tokens = {1, 2, 3, 4};
    const support::MatrixF before = model.forward_tokens(tokens);
    model.apply_woq(32);
    const support::MatrixF after = model.forward_tokens(tokens);
    double dot = 0.0, nb = 0.0, na = 0.0;
    for (std::size_t i = 0; i < before.size(); ++i) {
        dot += before.data()[i] * after.data()[i];
        nb += before.data()[i] * before.data()[i];
        na += after.data()[i] * after.data()[i];
    }
    EXPECT_GT(dot / std::sqrt(nb * na), 0.95);
    EXPECT_NE(before.data(), after.data());
}

TEST(Transformer, HooksChangeSoftmaxPath)
{
    const ModelConfig config = tiny_llama();
    TransformerModel model(config, 37);
    const std::vector<int> tokens = {9, 8, 7, 6, 5};
    const support::MatrixF exact = model.forward_tokens(tokens);

    const auto vlp =
        vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 4);
    NonlinearHooks hooks;
    hooks.softmax_exp = vlp.get();
    model.set_hooks(hooks);
    const support::MatrixF approx = model.forward_tokens(tokens);
    EXPECT_NE(exact.data(), approx.data());
    // Still well-behaved.
    for (const float v : approx.data()) {
        EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(Transformer, PerLayerHooksOverrideGlobal)
{
    const ModelConfig config = tiny_llama();
    TransformerModel model(config, 41);
    const std::vector<int> tokens = {9, 8, 7};

    const auto vlp =
        vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 4);
    NonlinearHooks layer_hooks;
    layer_hooks.softmax_exp = vlp.get();

    // Global exact + layer-0 approximate differs from all-exact.
    const support::MatrixF exact = model.forward_tokens(tokens);
    model.set_layer_hooks(0, layer_hooks);
    const support::MatrixF mixed = model.forward_tokens(tokens);
    EXPECT_NE(exact.data(), mixed.data());
    model.set_layer_hooks(0, std::nullopt);
    const support::MatrixF restored = model.forward_tokens(tokens);
    EXPECT_EQ(exact.data(), restored.data());
}

TEST(Transformer, CaptureSeesBothOps)
{
    const ModelConfig config = tiny_llama();
    TransformerModel model(config, 43);
    NonlinearProfiler profiler;
    model.set_capture(profiler.capture());
    const std::vector<int> tokens = {1, 2, 3, 4, 5, 6};
    model.forward_tokens(tokens);
    EXPECT_TRUE(profiler.has_site(nonlinear::NonlinearOp::kExp, 0));
    EXPECT_TRUE(profiler.has_site(nonlinear::NonlinearOp::kSilu, 0));
    EXPECT_TRUE(profiler.has_site(nonlinear::NonlinearOp::kExp,
                                  config.num_layers - 1));
    // Softmax capture is max-subtracted: all values <= 0.
    const SiteProfile& sm =
        profiler.site(nonlinear::NonlinearOp::kExp, 0);
    EXPECT_GT(sm.values.total(), 0u);
    // All mass at or below zero; bins have width 0.25, so the first
    // strictly-positive bin center is 0.375.
    EXPECT_EQ(sm.values.fraction_in(0.3, 100.0), 0.0);
}

TEST(Transformer, GqaSharesKvHeads)
{
    // A GQA model (fewer KV heads) must still run and be causal.
    ModelConfig config = llama2_70b().scaled_for_eval(2, 32, 64);
    ASSERT_GT(config.gqa_group(), 1u);
    const TransformerModel model(config, 47);
    const std::vector<int> tokens = {5, 6, 7, 8};
    const support::MatrixF logits = model.forward_tokens(tokens);
    for (const float v : logits.data()) {
        EXPECT_TRUE(std::isfinite(v));
    }
}

}  // namespace
}  // namespace model
}  // namespace mugi
