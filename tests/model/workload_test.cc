#include "model/workload.h"

#include <gtest/gtest.h>

namespace mugi {
namespace model {
namespace {

TEST(Workload, DecodeMacCountMatchesParameterCount)
{
    // A decode step touches every weight once: MACs from weight GEMMs
    // = batch * weight_params.
    const ModelConfig config = llama2_7b();
    const std::size_t batch = 8;
    const Workload w = build_decode_workload(config, batch, 4096);
    std::uint64_t weight_macs = 0;
    for (const GemmOp& g : w.gemms) {
        if (g.weights_from_dram) {
            weight_macs += g.macs();
        }
    }
    EXPECT_EQ(weight_macs,
              static_cast<std::uint64_t>(batch) *
                  config.weight_params());
}

TEST(Workload, AttentionMacsScaleWithContext)
{
    const ModelConfig config = llama2_7b();
    const Workload short_ctx = build_decode_workload(config, 8, 1024);
    const Workload long_ctx = build_decode_workload(config, 8, 4096);
    std::uint64_t attn_short = 0, attn_long = 0;
    for (const GemmOp& g : short_ctx.gemms) {
        if (g.cls == OpClass::kAttention) attn_short += g.macs();
    }
    for (const GemmOp& g : long_ctx.gemms) {
        if (g.cls == OpClass::kAttention) attn_long += g.macs();
    }
    EXPECT_EQ(attn_long, attn_short * 4);
}

TEST(Workload, GqaBatchesQueriesPerKvHead)
{
    const ModelConfig c70 = llama2_70b();
    const Workload w = build_decode_workload(c70, 8, 4096);
    for (const GemmOp& g : w.gemms) {
        if (g.cls == OpClass::kAttention) {
            // 8 queries per KV head * batch 8 = 64 activation rows --
            // the small-batch GEMM (not GEMV) GQA creates (Sec. 2.3.1).
            EXPECT_EQ(g.m, 8u * 8u);
            EXPECT_EQ(g.count, c70.num_layers * c70.num_kv_heads);
        }
    }
}

TEST(Workload, WeightBytesReflectInt4)
{
    const ModelConfig config = llama2_70b();
    const Workload w = build_decode_workload(config, 8, 4096);
    // INT4 weights: params / 2 bytes.
    EXPECT_EQ(w.total_weight_bytes(), config.weight_params() / 2);
}

TEST(Workload, SoftmaxElementsMatchAttentionShape)
{
    const ModelConfig config = llama2_7b();
    const std::size_t batch = 4, ctx = 512;
    const Workload w = build_decode_workload(config, batch, ctx);
    bool found = false;
    for (const NonlinearWork& n : w.nonlinears) {
        if (n.is_softmax) {
            found = true;
            EXPECT_EQ(n.elements, config.num_layers * config.num_heads *
                                      batch * ctx);
            EXPECT_EQ(n.row_length, ctx);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Workload, LlamaUsesSiluOthersGelu)
{
    const Workload llama = build_decode_workload(llama2_7b(), 1, 128);
    const Workload whisper =
        build_prefill_workload(whisper_tiny(), 1, 128);
    bool llama_silu = false, whisper_gelu = false;
    for (const NonlinearWork& n : llama.nonlinears) {
        if (n.op == nonlinear::NonlinearOp::kSilu) llama_silu = true;
    }
    for (const NonlinearWork& n : whisper.nonlinears) {
        if (n.op == nonlinear::NonlinearOp::kGelu) whisper_gelu = true;
    }
    EXPECT_TRUE(llama_silu);
    EXPECT_TRUE(whisper_gelu);
}

TEST(Workload, GatedFfnHasThreeMatrices)
{
    const Workload llama = build_decode_workload(llama2_7b(), 1, 128);
    int ffn_gemms = 0;
    for (const GemmOp& g : llama.gemms) {
        if (g.cls == OpClass::kFfn) ++ffn_gemms;
    }
    EXPECT_EQ(ffn_gemms, 3);

    const Workload whisper =
        build_decode_workload(whisper_tiny(), 1, 128);
    ffn_gemms = 0;
    for (const GemmOp& g : whisper.gemms) {
        if (g.cls == OpClass::kFfn) ++ffn_gemms;
    }
    EXPECT_EQ(ffn_gemms, 2);
}

TEST(Workload, PrefillTokensAndDecodeTokens)
{
    const Workload decode = build_decode_workload(llama2_7b(), 8, 1024);
    EXPECT_EQ(decode.tokens(), 8u);
    const Workload prefill =
        build_prefill_workload(llama2_7b(), 2, 256);
    EXPECT_EQ(prefill.tokens(), 512u);
}

TEST(Workload, SeventyBMacsPerTokenOrderOfMagnitude)
{
    const Workload w = build_decode_workload(llama2_70b(), 8, 4096);
    const double macs_per_token =
        static_cast<double>(w.total_macs()) / w.tokens();
    // ~68G weight MACs + attention; well under 100G.
    EXPECT_GT(macs_per_token, 6.0e10);
    EXPECT_LT(macs_per_token, 1.2e11);
}

}  // namespace
}  // namespace model
}  // namespace mugi
