#include <cmath>
#include <memory>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "nonlinear/approximator.h"
#include "nonlinear/partial.h"
#include "nonlinear/precise_unit.h"
#include "nonlinear/pwl.h"
#include "nonlinear/taylor.h"

namespace mugi {
namespace nonlinear {
namespace {

// ---- PWL ----

TEST(Pwl, ExactAtSegmentEndpoints)
{
    PwlConfig config;
    config.op = NonlinearOp::kExp;
    config.segments = 22;
    config.segment_range = -20.0;
    const PwlApproximator pwl(config);
    const double step = 20.0 / 22.0;
    for (int s = 0; s <= 22; ++s) {
        const double x = -20.0 + s * step;
        EXPECT_NEAR(pwl.apply(static_cast<float>(x)), std::exp(x), 1e-6)
            << x;
    }
}

TEST(Pwl, OverestimatesConvexFunctions)
{
    // Linear interpolation of a convex function is an upper bound.
    PwlConfig config;
    config.op = NonlinearOp::kExp;
    config.segments = 8;
    config.segment_range = -16.0;
    const PwlApproximator pwl(config);
    for (float x = -15.9f; x < 0.0f; x += 0.37f) {
        EXPECT_GE(pwl.apply(x) + 1e-7, std::exp(x)) << x;
    }
}

TEST(Pwl, FlushesBelowRange)
{
    PwlConfig config;
    config.op = NonlinearOp::kExp;
    config.segment_range = -8.0;
    const PwlApproximator pwl(config);
    // Fig. 8: "-100% error indicates flushing output to 0".
    EXPECT_EQ(pwl.apply(-9.0f), 0.0f);
    EXPECT_EQ(pwl.apply(-100.0f), 0.0f);
}

TEST(Pwl, SiluRangeIsSymmetric)
{
    PwlConfig config;
    config.op = NonlinearOp::kSilu;
    config.segments = 22;
    config.segment_range = 7.0;
    const PwlApproximator pwl(config);
    EXPECT_EQ(pwl.lo(), -7.0);
    EXPECT_EQ(pwl.hi(), 7.0);
    // Outside the range SiLU follows its asymptotes.
    EXPECT_EQ(pwl.apply(9.0f), 9.0f);
    EXPECT_EQ(pwl.apply(-9.0f), 0.0f);
}

TEST(Pwl, MoreSegmentsMoreAccurate)
{
    std::mt19937 rng(61);
    std::uniform_real_distribution<float> dist(-9.9f, 0.0f);
    double err_4 = 0.0, err_32 = 0.0;
    PwlConfig coarse{NonlinearOp::kExp, 4, -10.0};
    PwlConfig fine{NonlinearOp::kExp, 32, -10.0};
    const PwlApproximator pwl4(coarse);
    const PwlApproximator pwl32(fine);
    for (int i = 0; i < 2000; ++i) {
        const float x = dist(rng);
        err_4 += std::fabs(pwl4.apply(x) - std::exp(x));
        err_32 += std::fabs(pwl32.apply(x) - std::exp(x));
    }
    EXPECT_LT(err_32, err_4 / 10.0);
}

// ---- Taylor ----

TEST(Taylor, AccurateNearCenter)
{
    TaylorConfig config{NonlinearOp::kExp, 9, -2.0};
    const TaylorApproximator taylor(config);
    for (float x = -3.0f; x <= -1.0f; x += 0.05f) {
        EXPECT_NEAR(taylor.apply(x), std::exp(x), 1e-5) << x;
    }
}

TEST(Taylor, DegradesFarFromCenter)
{
    TaylorConfig config{NonlinearOp::kExp, 5, 0.0};
    const TaylorApproximator taylor(config);
    const double near_rel =
        std::fabs(taylor.apply(0.5f) - std::exp(0.5)) / std::exp(0.5);
    const double far_rel =
        std::fabs(taylor.apply(-6.0f) - std::exp(-6.0)) / std::exp(-6.0);
    EXPECT_LT(near_rel, 1e-3);
    EXPECT_GT(far_rel, 0.5);  // Sec. 7.2: poor accuracy off-center.
}

TEST(Taylor, ExpOutputNeverNegative)
{
    TaylorConfig config{NonlinearOp::kExp, 9, -5.0};
    const TaylorApproximator taylor(config);
    for (float x = -30.0f; x <= 0.0f; x += 0.1f) {
        EXPECT_GE(taylor.apply(x), 0.0f) << x;
    }
}

TEST(Taylor, CyclesGrowWithDegree)
{
    const TaylorApproximator d3({NonlinearOp::kExp, 3, 0.0});
    const TaylorApproximator d9({NonlinearOp::kExp, 9, 0.0});
    EXPECT_LT(d3.cycles_per_element(), d9.cycles_per_element());
}

TEST(Taylor, SiluSeriesUsable)
{
    // The SiLU series around 0 converges slowly toward |x| = pi (the
    // sigmoid poles sit at +-i pi), so the degree-9 truncation carries
    // ~1e-3 error at |x| = 1.5.
    TaylorConfig config{NonlinearOp::kSilu, 9, 0.0};
    const TaylorApproximator taylor(config);
    for (float x = -1.5f; x <= 1.5f; x += 0.1f) {
        EXPECT_NEAR(taylor.apply(x), silu_ref(x), 2e-3) << x;
    }
}

// ---- Partial approximation ----

TEST(Partial, MatchesHardSwish)
{
    const PartialApproximator pa(NonlinearOp::kSilu);
    EXPECT_EQ(pa.apply(0.0f), 0.0f);
    EXPECT_EQ(pa.apply(-3.0f), 0.0f);
    EXPECT_EQ(pa.apply(-5.0f), 0.0f);
    EXPECT_EQ(pa.apply(3.0f), 3.0f);
    EXPECT_EQ(pa.apply(6.0f), 6.0f);  // Above +3 it is the identity.
    EXPECT_NEAR(pa.apply(1.0f), 1.0f * 4.0f / 6.0f, 1e-6);
}

TEST(Partial, ApproximatesSiluWithinBand)
{
    const PartialApproximator pa(NonlinearOp::kSilu);
    for (float x = -8.0f; x <= 8.0f; x += 0.05f) {
        EXPECT_NEAR(pa.apply(x), silu_ref(x), 0.4f) << x;
    }
}

TEST(Partial, RejectsUnsupportedOps)
{
    EXPECT_THROW(PartialApproximator(NonlinearOp::kExp),
                 std::invalid_argument);
    EXPECT_THROW(PartialApproximator(NonlinearOp::kGelu),
                 std::invalid_argument);
}

// ---- Precise unit ----

class PreciseUnitTest : public ::testing::TestWithParam<NonlinearOp> {};

TEST_P(PreciseUnitTest, MatchesReferenceTightly)
{
    const PreciseUnit unit(GetParam());
    std::mt19937 rng(71);
    std::uniform_real_distribution<float> dist(-20.0f, 10.0f);
    for (int i = 0; i < 3000; ++i) {
        float x = dist(rng);
        if (GetParam() == NonlinearOp::kExp && x > 0.0f) {
            x = -x;  // Softmax domain.
        }
        // The unit computes GELU in its tanh form (Eq. 4), so compare
        // against that form; exp and SiLU match the exact reference.
        const double exact = GetParam() == NonlinearOp::kGelu
                                 ? gelu_tanh_ref(x)
                                 : eval_ref(GetParam(), x);
        const double got = unit.apply(x);
        EXPECT_NEAR(got, exact,
                    2e-5 * std::max(1.0, std::fabs(exact)))
            << op_name(GetParam()) << " x=" << x;
    }
}

TEST_P(PreciseUnitTest, CostsFortyFourCycles)
{
    const PreciseUnit unit(GetParam());
    EXPECT_DOUBLE_EQ(unit.cycles_per_element(), 44.0);
}

INSTANTIATE_TEST_SUITE_P(Ops, PreciseUnitTest,
                         ::testing::Values(NonlinearOp::kExp,
                                           NonlinearOp::kSilu,
                                           NonlinearOp::kGelu),
                         [](const auto& info) {
                             return op_name(info.param);
                         });

TEST(PreciseKernels, ExpRangeReduction)
{
    // The degree-9 truncation carries ~1.5e-12 relative error at the
    // reduced-interval edges; allow 5e-12.
    for (double x = -80.0; x <= 80.0; x += 0.61) {
        EXPECT_NEAR(precise_exp(x), std::exp(x),
                    5e-12 * std::exp(x) + 1e-300)
            << x;
    }
}

TEST(PreciseKernels, ReciprocalNewtonRaphson)
{
    for (double x = 0.001; x <= 1000.0; x *= 1.7) {
        EXPECT_NEAR(precise_reciprocal(x) * x, 1.0, 1e-9) << x;
        EXPECT_NEAR(precise_reciprocal(-x) * -x, 1.0, 1e-9) << x;
    }
}

// ---- softmax_with ----

TEST(SoftmaxWith, ExactApproximatorMatchesReference)
{
    const auto exact = make_exact(NonlinearOp::kExp);
    std::mt19937 rng(81);
    std::uniform_real_distribution<float> dist(-10.0f, 10.0f);
    std::vector<float> logits(128);
    for (float& v : logits) v = dist(rng);
    std::vector<float> got(logits.size());
    softmax_with(*exact, logits, got);
    const auto expected = softmax_ref(logits);
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], expected[i], 1e-6);
    }
}

TEST(SoftmaxWith, DegenerateAllFlushedRowIsUniform)
{
    // A Taylor config so wrong every exp output is ~0 after clamping.
    TaylorConfig config{NonlinearOp::kExp, 1, -40.0};
    const TaylorApproximator bad(config);
    std::vector<float> logits = {0.0f, -1.0f, -2.0f, -3.0f};
    std::vector<float> probs(4);
    softmax_with(bad, logits, probs);
    double sum = std::accumulate(probs.begin(), probs.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

}  // namespace
}  // namespace nonlinear
}  // namespace mugi
