#include "nonlinear/reference.h"

#include <cmath>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

namespace mugi {
namespace nonlinear {
namespace {

TEST(Reference, SigmoidMatchesClosedForm)
{
    for (double x = -30.0; x <= 30.0; x += 0.37) {
        const double expected = 1.0 / (1.0 + std::exp(-x));
        EXPECT_NEAR(sigmoid_ref(x), expected, 1e-12) << x;
    }
}

TEST(Reference, SigmoidStableAtExtremes)
{
    EXPECT_NEAR(sigmoid_ref(-1000.0), 0.0, 1e-300);
    EXPECT_NEAR(sigmoid_ref(1000.0), 1.0, 1e-12);
    EXPECT_FALSE(std::isnan(sigmoid_ref(-1e6)));
}

TEST(Reference, SiluProperties)
{
    EXPECT_DOUBLE_EQ(silu_ref(0.0), 0.0);
    // SiLU is bounded below by about -0.2785.
    double min = 0.0;
    for (double x = -20.0; x <= 20.0; x += 0.01) {
        min = std::min(min, silu_ref(x));
    }
    EXPECT_NEAR(min, -0.27846, 1e-3);
    // Asymptotes: silu(x) -> x for large x, -> 0 for small x.
    EXPECT_NEAR(silu_ref(30.0), 30.0, 1e-9);
    EXPECT_NEAR(silu_ref(-30.0), 0.0, 1e-9);
}

TEST(Reference, GeluFormsAgree)
{
    // Eq. 3 (erf) vs Eq. 4 (tanh): the tanh form is a published
    // approximation accurate to ~1e-3 absolute over moderate inputs.
    for (double x = -5.0; x <= 5.0; x += 0.1) {
        EXPECT_NEAR(gelu_ref(x), gelu_tanh_ref(x), 2e-3) << x;
    }
}

TEST(Reference, GeluProperties)
{
    EXPECT_DOUBLE_EQ(gelu_ref(0.0), 0.0);
    EXPECT_NEAR(gelu_ref(10.0), 10.0, 1e-9);
    EXPECT_NEAR(gelu_ref(-10.0), 0.0, 1e-9);
    // GELU(x) - GELU(-x) = x (from the erf antisymmetry).
    for (double x = 0.0; x <= 6.0; x += 0.25) {
        EXPECT_NEAR(gelu_ref(x) - gelu_ref(-x), x, 1e-12) << x;
    }
}

TEST(Reference, SoftmaxSumsToOne)
{
    std::mt19937 rng(51);
    std::uniform_real_distribution<float> dist(-50.0f, 50.0f);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<float> logits(64);
        for (float& v : logits) v = dist(rng);
        const std::vector<float> probs = softmax_ref(logits);
        const double sum =
            std::accumulate(probs.begin(), probs.end(), 0.0);
        EXPECT_NEAR(sum, 1.0, 1e-5);
        for (const float p : probs) {
            EXPECT_GE(p, 0.0f);
            EXPECT_LE(p, 1.0f);
        }
    }
}

TEST(Reference, SoftmaxShiftInvariant)
{
    std::vector<float> a = {1.0f, 2.0f, 3.0f, 4.0f};
    std::vector<float> b = {101.0f, 102.0f, 103.0f, 104.0f};
    const auto pa = softmax_ref(a);
    const auto pb = softmax_ref(b);
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_NEAR(pa[i], pb[i], 1e-6);
    }
}

TEST(Reference, SoftmaxStableForLargeLogits)
{
    std::vector<float> logits = {1e30f, 1e30f};
    const auto probs = softmax_ref(logits);
    EXPECT_NEAR(probs[0], 0.5f, 1e-6);
    EXPECT_NEAR(probs[1], 0.5f, 1e-6);
}

// ---- Taylor coefficients: exact derivatives. ----

double
horner(const std::vector<double>& coeffs, double t)
{
    double acc = 0.0;
    for (std::size_t i = coeffs.size(); i-- > 0;) {
        acc = acc * t + coeffs[i];
    }
    return acc;
}

struct TaylorCase {
    NonlinearOp op;
    double center;
};

class TaylorCoefficientsTest
    : public ::testing::TestWithParam<TaylorCase> {};

TEST_P(TaylorCoefficientsTest, HighDegreeSeriesConvergesNearCenter)
{
    const TaylorCase c = GetParam();
    const auto coeffs = taylor_coefficients(c.op, 12, c.center);
    for (double dx = -0.4; dx <= 0.4; dx += 0.05) {
        const double x = c.center + dx;
        const double approx = horner(coeffs, dx);
        const double exact = eval_ref(c.op, x);
        EXPECT_NEAR(approx, exact, 1e-6 * std::max(1.0, std::fabs(exact)))
            << op_name(c.op) << " center=" << c.center << " x=" << x;
    }
}

TEST_P(TaylorCoefficientsTest, ZerothAndFirstDerivativeExact)
{
    const TaylorCase c = GetParam();
    const auto coeffs = taylor_coefficients(c.op, 3, c.center);
    EXPECT_NEAR(coeffs[0], eval_ref(c.op, c.center), 1e-12);
    // Central finite-difference check of the first derivative.
    const double h = 1e-6;
    const double fd = (eval_ref(c.op, c.center + h) -
                       eval_ref(c.op, c.center - h)) /
                      (2.0 * h);
    EXPECT_NEAR(coeffs[1], fd, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Centers, TaylorCoefficientsTest,
    ::testing::Values(TaylorCase{NonlinearOp::kExp, 0.0},
                      TaylorCase{NonlinearOp::kExp, -5.0},
                      TaylorCase{NonlinearOp::kExp, -2.0},
                      TaylorCase{NonlinearOp::kSilu, 0.0},
                      TaylorCase{NonlinearOp::kSilu, 1.5},
                      TaylorCase{NonlinearOp::kSilu, -2.0},
                      TaylorCase{NonlinearOp::kGelu, 0.0},
                      TaylorCase{NonlinearOp::kGelu, 1.0},
                      TaylorCase{NonlinearOp::kGelu, -1.5}));

}  // namespace
}  // namespace nonlinear
}  // namespace mugi
