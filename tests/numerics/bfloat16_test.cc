#include "numerics/bfloat16.h"

#include "numerics/float_bits.h"

#include <cmath>
#include <limits>
#include <random>

#include <gtest/gtest.h>

namespace mugi {
namespace numerics {
namespace {

TEST(BFloat16, ExactSmallIntegersRoundTrip)
{
    for (int i = -256; i <= 256; ++i) {
        const float value = static_cast<float>(i);
        EXPECT_EQ(BFloat16(value).to_float(), value) << i;
    }
}

TEST(BFloat16, PowersOfTwoAreExact)
{
    for (int e = -30; e <= 30; ++e) {
        const float value = std::ldexp(1.0f, e);
        EXPECT_EQ(BFloat16(value).to_float(), value) << e;
    }
}

TEST(BFloat16, RoundToNearestEven)
{
    // 1 + 1/256 sits exactly between 1.0 and the next BF16 (1 + 1/128);
    // ties go to even, i.e. down to 1.0.
    EXPECT_EQ(BFloat16(1.0f + 1.0f / 256.0f).to_float(), 1.0f);
    // 1 + 3/256 ties between 1+1/128 and 1+2/128; even mantissa wins.
    EXPECT_EQ(BFloat16(1.0f + 3.0f / 256.0f).to_float(),
              1.0f + 2.0f / 128.0f);
    // Slightly above the tie rounds up.
    EXPECT_EQ(BFloat16(1.0f + 1.01f / 256.0f).to_float(),
              1.0f + 1.0f / 128.0f);
}

TEST(BFloat16, RelativeErrorBound)
{
    std::mt19937 rng(7);
    std::uniform_real_distribution<float> dist(-1e6f, 1e6f);
    for (int i = 0; i < 10000; ++i) {
        const float value = dist(rng);
        if (value == 0.0f) continue;
        const float rounded = BFloat16(value).to_float();
        // BF16 has 8 significand bits -> relative error <= 2^-9.
        EXPECT_LE(std::fabs(rounded - value) / std::fabs(value),
                  std::ldexp(1.0f, -8))
            << value;
    }
}

TEST(BFloat16, SpecialValues)
{
    EXPECT_TRUE(BFloat16(std::nanf("")).is_nan());
    EXPECT_TRUE(BFloat16(INFINITY).is_inf());
    EXPECT_TRUE(BFloat16(-INFINITY).is_inf());
    EXPECT_TRUE(BFloat16(0.0f).is_zero());
    EXPECT_TRUE(BFloat16(-0.0f).is_zero());
    EXPECT_TRUE(std::isnan(BFloat16(std::nanf("")).to_float()));
    EXPECT_EQ(BFloat16(INFINITY).to_float(), INFINITY);
}

TEST(BFloat16, NaNDoesNotBecomeInf)
{
    // A NaN whose payload lives entirely in the low 16 bits must stay a
    // NaN after rounding.
    const float sneaky_nan = bits_to_float(0x7F800001u);
    ASSERT_TRUE(std::isnan(sneaky_nan));
    EXPECT_TRUE(BFloat16(sneaky_nan).is_nan());
}

TEST(BFloat16, OverflowGoesToInf)
{
    // Values above BF16 max (~3.39e38) overflow to inf via rounding.
    EXPECT_TRUE(BFloat16(std::numeric_limits<float>::max()).is_inf());
}

TEST(BFloat16, RoundTripThroughBits)
{
    std::mt19937 rng(11);
    std::uniform_int_distribution<std::uint32_t> dist(0, 0xFFFF);
    for (int i = 0; i < 2000; ++i) {
        const std::uint16_t bits = static_cast<std::uint16_t>(dist(rng));
        const BFloat16 value = BFloat16::from_bits(bits);
        if (value.is_nan()) continue;
        // Decoding then re-encoding is the identity for non-NaN.
        EXPECT_EQ(BFloat16(value.to_float()).bits(), bits);
    }
}

TEST(BFloat16, RoundingIsIdempotent)
{
    std::mt19937 rng(13);
    std::uniform_real_distribution<float> dist(-1e4f, 1e4f);
    for (int i = 0; i < 1000; ++i) {
        const float once = bf16_round(dist(rng));
        EXPECT_EQ(bf16_round(once), once);
    }
}

}  // namespace
}  // namespace numerics
}  // namespace mugi
