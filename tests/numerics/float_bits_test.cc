#include "numerics/float_bits.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace mugi {
namespace numerics {
namespace {

TEST(FloatBits, DecomposeKnownValues)
{
    const FloatFields one = decompose(1.0f);
    EXPECT_FALSE(one.sign);
    EXPECT_EQ(one.exponent, 0);
    EXPECT_EQ(one.fraction, 0u);

    const FloatFields minus_three = decompose(-3.0f);
    EXPECT_TRUE(minus_three.sign);
    EXPECT_EQ(minus_three.exponent, 1);
    // 3 = 1.1b * 2^1 -> fraction = 0.1b = 1 << 22.
    EXPECT_EQ(minus_three.fraction, 1u << 22);

    const FloatFields eighth = decompose(0.125f);
    EXPECT_EQ(eighth.exponent, -3);
    EXPECT_EQ(eighth.fraction, 0u);
}

TEST(FloatBits, DecomposeClassifiesSpecials)
{
    EXPECT_TRUE(decompose(0.0f).is_zero);
    EXPECT_TRUE(decompose(-0.0f).is_zero);
    EXPECT_TRUE(decompose(-0.0f).sign);
    EXPECT_TRUE(decompose(INFINITY).is_inf);
    EXPECT_TRUE(decompose(-INFINITY).is_inf);
    EXPECT_TRUE(decompose(-INFINITY).sign);
    EXPECT_TRUE(decompose(std::nanf("")).is_nan);
}

TEST(FloatBits, DenormalsFlushToZero)
{
    const float denormal = std::ldexp(1.0f, -140);
    ASSERT_GT(denormal, 0.0f);
    EXPECT_TRUE(decompose(denormal).is_zero);
}

TEST(FloatBits, ComposeInvertsDecompose)
{
    std::mt19937 rng(3);
    std::uniform_real_distribution<float> dist(-1e20f, 1e20f);
    for (int i = 0; i < 10000; ++i) {
        const float value = dist(rng);
        EXPECT_EQ(compose(decompose(value)), value);
    }
}

TEST(FloatBits, ComposeHandlesNarrowFractions)
{
    // fraction 5 with 3 fraction bits = 1.101b = 1.625.
    FloatFields fields;
    fields.exponent = 2;
    fields.fraction = 5;
    fields.fraction_bits = 3;
    EXPECT_EQ(compose(fields), 1.625f * 4.0f);
}

TEST(FloatBits, UnbiasedExponentMatchesLog2)
{
    std::mt19937 rng(5);
    std::uniform_real_distribution<float> dist(1e-20f, 1e20f);
    for (int i = 0; i < 5000; ++i) {
        const float value = dist(rng);
        EXPECT_EQ(unbiased_exponent(value),
                  static_cast<int>(std::floor(std::log2(value))))
            << value;
    }
}

}  // namespace
}  // namespace numerics
}  // namespace mugi
