#include "numerics/fp8.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace mugi {
namespace numerics {
namespace {

class Fp8CodecTest : public ::testing::TestWithParam<Fp8Format> {
  protected:
    Fp8Codec codec() const { return Fp8Codec(GetParam()); }
};

TEST_P(Fp8CodecTest, AllPatternsRoundTrip)
{
    const Fp8Codec codec = this->codec();
    for (int bits = 0; bits < 256; ++bits) {
        const float decoded = codec.decode(static_cast<std::uint8_t>(bits));
        if (std::isnan(decoded)) {
            EXPECT_TRUE(std::isnan(codec.decode(codec.encode(decoded))));
            continue;
        }
        // Every representable value encodes back to a pattern that
        // decodes to the same value (sign of zero may differ pattern-
        // wise but compares equal as float).
        EXPECT_EQ(codec.decode(codec.encode(decoded)), decoded) << bits;
    }
}

TEST_P(Fp8CodecTest, EncodingIsMonotonic)
{
    const Fp8Codec codec = this->codec();
    float prev = -codec.max_finite();
    for (float x = -codec.max_finite(); x <= codec.max_finite();
         x += codec.max_finite() / 512.0f) {
        const float rx = codec.round_trip(x);
        const float rprev = codec.round_trip(prev);
        EXPECT_LE(rprev, rx) << x;
        prev = x;
    }
}

TEST_P(Fp8CodecTest, RelativeErrorBound)
{
    const Fp8Codec codec = this->codec();
    const float ulp = std::ldexp(1.0f, -codec.mantissa_bits());
    std::mt19937 rng(17);
    std::uniform_real_distribution<float> dist(0.1f, codec.max_finite());
    for (int i = 0; i < 5000; ++i) {
        const float x = dist(rng);
        const float r = codec.round_trip(x);
        EXPECT_LE(std::fabs(r - x) / x, ulp / 2.0f * 1.0001f) << x;
    }
}

TEST_P(Fp8CodecTest, SaturatesAboveMaxFinite)
{
    const Fp8Codec codec = this->codec();
    EXPECT_EQ(codec.round_trip(codec.max_finite() * 1.5f),
              GetParam() == Fp8Format::kE5M2 ? codec.max_finite()
                                             : codec.max_finite());
}

TEST_P(Fp8CodecTest, ZeroAndSignedZero)
{
    const Fp8Codec codec = this->codec();
    EXPECT_EQ(codec.round_trip(0.0f), 0.0f);
    EXPECT_EQ(codec.round_trip(-0.0f), 0.0f);
    EXPECT_TRUE(std::signbit(codec.round_trip(-0.0f)));
}

TEST_P(Fp8CodecTest, NanEncodes)
{
    const Fp8Codec codec = this->codec();
    EXPECT_TRUE(std::isnan(codec.round_trip(std::nanf(""))));
}

INSTANTIATE_TEST_SUITE_P(Formats, Fp8CodecTest,
                         ::testing::Values(Fp8Format::kE4M3,
                                           Fp8Format::kE5M2),
                         [](const auto& info) {
                             return info.param == Fp8Format::kE4M3
                                        ? "E4M3"
                                        : "E5M2";
                         });

TEST(Fp8E4M3, KnownEncodings)
{
    const Fp8Codec codec(Fp8Format::kE4M3);
    EXPECT_EQ(codec.round_trip(448.0f), 448.0f);  // Max finite.
    EXPECT_EQ(codec.round_trip(1.0f), 1.0f);
    EXPECT_EQ(codec.round_trip(1.125f), 1.125f);  // 1 + 1/8 exact.
    EXPECT_EQ(codec.round_trip(0.015625f), 0.015625f);  // 2^-6 normal min.
    // Infinity saturates (E4M3 has no inf).
    EXPECT_EQ(codec.round_trip(INFINITY), 448.0f);
}

TEST(Fp8E5M2, InfinityIsPreserved)
{
    const Fp8Codec codec(Fp8Format::kE5M2);
    EXPECT_TRUE(std::isinf(codec.round_trip(INFINITY)));
    EXPECT_TRUE(std::isinf(codec.round_trip(-INFINITY)));
    EXPECT_LT(codec.round_trip(-INFINITY), 0.0f);
}

TEST(Fp8E4M3, DenormalsRepresentable)
{
    const Fp8Codec codec(Fp8Format::kE4M3);
    // Smallest E4M3 denormal = 2^-9.
    const float tiny = std::ldexp(1.0f, -9);
    EXPECT_EQ(codec.round_trip(tiny), tiny);
    // Half of it rounds to zero or tiny, never something larger.
    EXPECT_LE(codec.round_trip(tiny / 2.0f), tiny);
}

}  // namespace
}  // namespace numerics
}  // namespace mugi
