#include "numerics/int4.h"

#include <random>

#include <gtest/gtest.h>

namespace mugi {
namespace numerics {
namespace {

TEST(Int4, FromIntRoundTripsFullRange)
{
    for (int v = -7; v <= 7; ++v) {
        EXPECT_EQ(Int4::from_int(v).value(), v);
    }
}

TEST(Int4, FromIntClampsOutOfRange)
{
    EXPECT_EQ(Int4::from_int(8).value(), 7);
    EXPECT_EQ(Int4::from_int(-8).value(), -7);
    EXPECT_EQ(Int4::from_int(1000).value(), 7);
    EXPECT_EQ(Int4::from_int(-1000).value(), -7);
}

TEST(Int4, EncodeDecodeAllNibbles)
{
    for (int nibble = 0; nibble < 16; ++nibble) {
        const Int4 value = Int4::decode(static_cast<std::uint8_t>(nibble));
        EXPECT_EQ(value.encode(), nibble);
        EXPECT_LE(value.magnitude, kInt4MaxMagnitude);
    }
}

TEST(Int4, MagnitudeFitsTemporalSweep)
{
    // The paper's 8-column array requires every magnitude to subscribe
    // within a 2^3-cycle sweep.
    for (int v = -7; v <= 7; ++v) {
        EXPECT_LT(Int4::from_int(v).magnitude, 1 << kInt4MagnitudeBits);
    }
}

TEST(PackedInt4, StoresTwoPerByte)
{
    PackedInt4 packed(10);
    EXPECT_EQ(packed.size(), 10u);
    EXPECT_EQ(packed.byte_size(), 5u);

    PackedInt4 odd(11);
    EXPECT_EQ(odd.byte_size(), 6u);
}

TEST(PackedInt4, SetGetRoundTrip)
{
    const std::size_t n = 257;
    PackedInt4 packed(n);
    std::mt19937 rng(23);
    std::uniform_int_distribution<int> dist(-7, 7);
    std::vector<int> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
        expected[i] = dist(rng);
        packed.set(i, Int4::from_int(expected[i]));
    }
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(packed.get(i).value(), expected[i]) << i;
    }
}

TEST(PackedInt4, NeighboursDoNotClobber)
{
    PackedInt4 packed(4);
    packed.set(0, Int4::from_int(-7));
    packed.set(1, Int4::from_int(5));
    packed.set(2, Int4::from_int(3));
    packed.set(3, Int4::from_int(-1));
    packed.set(1, Int4::from_int(-2));  // Overwrite the high nibble.
    EXPECT_EQ(packed.get(0).value(), -7);
    EXPECT_EQ(packed.get(1).value(), -2);
    EXPECT_EQ(packed.get(2).value(), 3);
    EXPECT_EQ(packed.get(3).value(), -1);
}

}  // namespace
}  // namespace numerics
}  // namespace mugi
