#include "numerics/rounding.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "numerics/bfloat16.h"

namespace mugi {
namespace numerics {
namespace {

TEST(RoundMantissa, ExactValuesUnchanged)
{
    // Values already on the 3-bit mantissa grid stay put.
    for (int m = 0; m < 8; ++m) {
        for (int e = -4; e <= 4; ++e) {
            const float value =
                std::ldexp(1.0f + static_cast<float>(m) / 8.0f, e);
            const RoundedValue r = round_mantissa(value, 3);
            EXPECT_EQ(r.mantissa, static_cast<std::uint32_t>(m));
            EXPECT_EQ(r.exponent, e);
            EXPECT_EQ(r.to_float(), value);
        }
    }
}

TEST(RoundMantissa, CarryIntoExponent)
{
    // 1.9999 with 3 mantissa bits rounds to 2.0 (mantissa 0, exp +1).
    const RoundedValue r = round_mantissa(1.9999f, 3);
    EXPECT_EQ(r.mantissa, 0u);
    EXPECT_EQ(r.exponent, 1);
    EXPECT_EQ(r.to_float(), 2.0f);
}

TEST(RoundMantissa, TiesToEven)
{
    // 1.0625 = 1 + 1/16 is exactly between 1.0 (m=0) and 1.125 (m=1)
    // on the 3-bit grid; ties-to-even selects m=0.
    const RoundedValue tie = round_mantissa(1.0625f, 3);
    EXPECT_EQ(tie.mantissa, 0u);
    // 1.1875 = 1 + 3/16 ties between m=1 and m=2 -> even m=2.
    const RoundedValue tie2 = round_mantissa(1.1875f, 3);
    EXPECT_EQ(tie2.mantissa, 2u);
}

TEST(RoundMantissa, SignPreserved)
{
    const RoundedValue r = round_mantissa(-1.3f, 3);
    EXPECT_TRUE(r.sign);
    EXPECT_LT(r.to_float(), 0.0f);
}

TEST(RoundMantissa, SpecialsPassThrough)
{
    EXPECT_TRUE(round_mantissa(0.0f, 3).is_zero);
    EXPECT_TRUE(round_mantissa(INFINITY, 3).is_inf);
    EXPECT_TRUE(round_mantissa(std::nanf(""), 3).is_nan);
    EXPECT_TRUE(std::isnan(round_mantissa(std::nanf(""), 3).to_float()));
}

class RoundMantissaWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundMantissaWidthTest, RelativeErrorBound)
{
    const int bits = GetParam();
    std::mt19937 rng(31);
    std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
    // Rounding the significand to n bits gives relative error at most
    // 2^-(n+1) (half a grid step over a significand >= 1).
    const float bound = std::ldexp(1.0f, -(bits + 1)) * 1.0001f;
    for (int i = 0; i < 4000; ++i) {
        const float x = dist(rng);
        if (x == 0.0f) continue;
        const float r = round_mantissa(x, bits).to_float();
        EXPECT_LE(std::fabs(r - x) / std::fabs(x), bound) << x;
    }
}

TEST_P(RoundMantissaWidthTest, Idempotent)
{
    const int bits = GetParam();
    std::mt19937 rng(37);
    std::uniform_real_distribution<float> dist(-10.0f, 10.0f);
    for (int i = 0; i < 1000; ++i) {
        const float once = round_mantissa(dist(rng), bits).to_float();
        EXPECT_EQ(round_mantissa(once, bits).to_float(), once);
    }
}

TEST_P(RoundMantissaWidthTest, Monotonic)
{
    const int bits = GetParam();
    float prev = -8.0f;
    for (float x = -8.0f; x <= 8.0f; x += 1.0f / 64.0f) {
        EXPECT_LE(round_mantissa(prev, bits).to_float(),
                  round_mantissa(x, bits).to_float())
            << x;
        prev = x;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RoundMantissaWidthTest,
                         ::testing::Values(0, 1, 2, 3, 4, 7, 10, 23));

TEST(RoundMantissa, Bf16InputPathMatchesPaperSetting)
{
    // The paper rounds the 7-bit BF16 mantissa down to 3 bits (Sec. 4,
    // walk-through of Fig. 10).  Verify the composed path.
    std::mt19937 rng(41);
    std::uniform_real_distribution<float> dist(-4.0f, 4.0f);
    for (int i = 0; i < 1000; ++i) {
        const float x = bf16_round(dist(rng));
        const RoundedValue r = round_mantissa(x, 3);
        if (r.is_zero) continue;
        EXPECT_LT(r.mantissa, 8u);
        // The 8-cycle temporal sweep covers every possible mantissa.
        EXPECT_GE(r.mantissa, 0u);
    }
}

}  // namespace
}  // namespace numerics
}  // namespace mugi
