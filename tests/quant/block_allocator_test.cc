/**
 * @file
 * Contract of quant::BlockPool, the shared allocator under the paged
 * KV cache: exact byte accounting, free-list block reuse, advisory
 * capacity (try_* enforce, plain calls may overcommit), analytic
 * byte reservations, and peak tracking.
 */

#include "quant/block_allocator.h"

#include <gtest/gtest.h>

namespace mugi {
namespace quant {
namespace {

TEST(BlockPool, ExactAccountingAndPeak)
{
    BlockPool pool(units::Bytes(1000), units::Tokens(8));
    EXPECT_EQ(pool.block_tokens(), units::Tokens(8));
    EXPECT_EQ(pool.capacity_bytes(), units::Bytes(1000));
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(0));
    EXPECT_DOUBLE_EQ(pool.utilization(), 0.0);

    const BlockId a = pool.allocate(units::Bytes(300));
    const BlockId b = pool.allocate(units::Bytes(200));
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(500));
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(2));
    EXPECT_EQ(pool.block_bytes(a), units::Bytes(300));
    EXPECT_DOUBLE_EQ(pool.utilization(), 0.5);

    pool.release(a);
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(200));
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(1));
    // Peak is monotone: it remembers the high-water mark.
    EXPECT_EQ(pool.peak_bytes_in_use(), units::Bytes(500));
    EXPECT_DOUBLE_EQ(pool.peak_utilization(), 0.5);
    pool.release(b);
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(pool.peak_bytes_in_use(), units::Bytes(500));
}

TEST(BlockPool, ReleasedBlocksAreReused)
{
    BlockPool pool(units::Bytes(0), units::Tokens(16));
    const BlockId a = pool.allocate(units::Bytes(64));
    const BlockId b = pool.allocate(units::Bytes(64));
    const BlockId c = pool.allocate(units::Bytes(128));
    pool.release(b);
    pool.release(a);
    // Same-size allocation reuses the most recently freed slot
    // instead of growing the slot table.
    EXPECT_EQ(pool.allocate(units::Bytes(64)), a);
    EXPECT_EQ(pool.allocate(units::Bytes(64)), b);
    // A different size cannot reuse those slots.
    pool.release(c);
    const BlockId d = pool.allocate(units::Bytes(256));
    EXPECT_NE(d, c);
    // ... but the same size can.
    EXPECT_EQ(pool.allocate(units::Bytes(128)), c);
}

TEST(BlockPool, ReusedBlocksComeBackZeroed)
{
    BlockPool pool(units::Bytes(0), units::Tokens(4));
    const BlockId a = pool.allocate(units::Bytes(16));
    std::byte* data = pool.data(a);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(data[i], std::byte{0}) << "fresh block byte " << i;
        data[i] = std::byte{0xAB};
    }
    pool.release(a);
    const BlockId b = pool.allocate(units::Bytes(16));
    ASSERT_EQ(b, a);
    const std::byte* reused = pool.data(b);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(reused[i], std::byte{0}) << "reused block byte " << i;
    }
}

TEST(BlockPool, CapacityIsAdvisoryButTryEnforces)
{
    BlockPool pool(units::Bytes(100), units::Tokens(4));
    EXPECT_TRUE(pool.fits(units::Bytes(100)));
    EXPECT_FALSE(pool.fits(units::Bytes(101)));

    const BlockId a = pool.try_allocate(units::Bytes(60));
    ASSERT_NE(a, kInvalidBlock);
    // Exhausted: try_allocate refuses, exactly-fitting succeeds.
    EXPECT_EQ(pool.try_allocate(units::Bytes(41)), kInvalidBlock);
    const BlockId b = pool.try_allocate(units::Bytes(40));
    ASSERT_NE(b, kInvalidBlock);
    EXPECT_EQ(pool.try_allocate(units::Bytes(1)), kInvalidBlock);
    EXPECT_FALSE(pool.fits(units::Bytes(1)));

    // Plain allocate may overcommit -- the scheduler's
    // oversized-request-runs-alone escape hatch.
    const BlockId c = pool.allocate(units::Bytes(50));
    ASSERT_NE(c, kInvalidBlock);
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(150));
    EXPECT_GT(pool.utilization(), 1.0);
    pool.release(c);
    pool.release(b);
    pool.release(a);
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
}

TEST(BlockPool, ReservationsShareTheBudgetWithBlocks)
{
    // Byte reservations are how the scheduler mirrors analytic
    // sessions' modeled caches into the same budget real blocks use.
    BlockPool pool(units::Bytes(100), units::Tokens(4));
    EXPECT_TRUE(pool.try_reserve(units::Bytes(70)));
    EXPECT_EQ(pool.reserved_bytes(), units::Bytes(70));
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(70));
    EXPECT_FALSE(pool.try_reserve(units::Bytes(31)));
    EXPECT_EQ(pool.try_allocate(units::Bytes(31)), kInvalidBlock);
    const BlockId a = pool.try_allocate(units::Bytes(30));
    ASSERT_NE(a, kInvalidBlock);
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(100));
    pool.unreserve(units::Bytes(20));
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(80));
    EXPECT_TRUE(pool.try_reserve(units::Bytes(20)));
    pool.release(a);
    pool.unreserve(units::Bytes(70));
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(pool.peak_bytes_in_use(), units::Bytes(100));
}

TEST(BlockPool, RefcountsFreeTheBlockExactlyOnce)
{
    BlockPool pool(units::Bytes(0), units::Tokens(8));
    const BlockId a = pool.allocate(units::Bytes(64));
    EXPECT_EQ(pool.ref_count(a), 1u);
    EXPECT_EQ(pool.shared_blocks(), units::Blocks(0));

    pool.retain(a);
    pool.retain(a);
    EXPECT_EQ(pool.ref_count(a), 3u);
    EXPECT_EQ(pool.shared_blocks(), units::Blocks(1));
    // Shared or not, the physical bytes are counted exactly once.
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(64));
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(1));

    // Two of the three holders release: storage survives and the
    // accounting never moves.
    pool.release(a);
    pool.release(a);
    EXPECT_EQ(pool.ref_count(a), 1u);
    EXPECT_EQ(pool.shared_blocks(), units::Blocks(0));
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(64));
    // The block's data pointer stays valid until the last release.
    EXPECT_NE(pool.data(a), nullptr);

    pool.release(a);  // Last holder: now the slot frees.
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(0));
    // And the slot is reusable for same-size allocations again.
    EXPECT_EQ(pool.allocate(units::Bytes(64)), a);
    EXPECT_EQ(pool.ref_count(a), 1u);
}

TEST(BlockPool, ReusedBlocksAreZeroFilled)
{
    // The INT4 KV append path ORs nibbles into block bytes, so it
    // depends on free-list reuse handing back all-zero storage; pin
    // that contract at the pool level.
    BlockPool pool(units::Bytes(0), units::Tokens(4));
    const BlockId a = pool.allocate(units::Bytes(32));
    std::byte* data = pool.data(a);
    for (std::size_t i = 0; i < 32; ++i) {
        data[i] = std::byte{0xAB};
    }
    pool.release(a);
    const BlockId b = pool.allocate(units::Bytes(32));
    EXPECT_EQ(b, a) << "same-size allocation reuses the freed slot";
    const std::byte* reused = pool.data(b);
    for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_EQ(reused[i], std::byte{0}) << "byte " << i;
    }
}

TEST(BlockPool, UnboundedPoolNeverRefuses)
{
    BlockPool pool;  // capacity 0 = unbounded.
    EXPECT_EQ(pool.block_tokens(), BlockPool::kDefaultBlockTokens);
    EXPECT_TRUE(pool.fits(units::Bytes(std::size_t{1} << 40)));
    EXPECT_NE(pool.try_allocate(units::Bytes(1 << 20)), kInvalidBlock);
    EXPECT_TRUE(pool.try_reserve(units::Bytes(1 << 20)));
    EXPECT_DOUBLE_EQ(pool.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(pool.peak_utilization(), 0.0);
}

}  // namespace
}  // namespace quant
}  // namespace mugi
