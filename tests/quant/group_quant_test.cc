#include "quant/group_quant.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace mugi {
namespace quant {
namespace {

support::MatrixF
gaussian(std::size_t rows, std::size_t cols, std::uint32_t seed,
         float stddev = 1.0f)
{
    std::mt19937 rng(seed);
    support::MatrixF m(rows, cols);
    support::fill_gaussian(m, rng, 0.0f, stddev);
    return m;
}

TEST(GroupQuant, RoundTripErrorWithinBound)
{
    const support::MatrixF w = gaussian(16, 256, 211);
    const QuantizedMatrix q = quantize_int4(w, 64);
    const float bound = max_abs_error_bound(q);
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
            EXPECT_LE(std::fabs(w.at(r, c) - q.dequantize_at(r, c)),
                      bound)
                << r << "," << c;
        }
    }
}

TEST(GroupQuant, GroupMaxIsRepresentedNearExactly)
{
    // The element with the group's max magnitude maps to code +-7, so
    // its dequantized value is max * (7 * scale) / max ~ exact up to
    // the BF16 rounding of the scale.
    support::MatrixF w(1, 8, 0.1f);
    w.at(0, 3) = -2.0f;
    const QuantizedMatrix q = quantize_int4(w, 8);
    EXPECT_EQ(q.values.at(0, 3).value(), -7);
    EXPECT_NEAR(q.dequantize_at(0, 3), -2.0f, 2.0f / 128.0f);
}

TEST(GroupQuant, SmallerGroupsSmallerError)
{
    const support::MatrixF w = gaussian(8, 512, 223);
    const double rms_256 = rms_error(w, quantize_int4(w, 256));
    const double rms_32 = rms_error(w, quantize_int4(w, 32));
    EXPECT_LT(rms_32, rms_256);
}

TEST(GroupQuant, FootprintIsRoughlyFourXSmaller)
{
    const support::MatrixF w = gaussian(64, 1024, 227);
    const QuantizedMatrix q = quantize_int4(w, 128);
    const std::size_t bf16_bytes = w.size() * 2;
    // INT4 + scales: a bit over 4x compression vs BF16.
    EXPECT_LT(q.byte_size(), bf16_bytes / 3);
    EXPECT_GT(q.byte_size(), bf16_bytes / 5);
}

TEST(GroupQuant, ZeroMatrixQuantizesToZero)
{
    const support::MatrixF w(4, 16, 0.0f);
    const QuantizedMatrix q = quantize_int4(w, 8);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 16; ++c) {
            EXPECT_EQ(q.dequantize_at(r, c), 0.0f);
        }
    }
}

TEST(GroupQuant, RaggedFinalGroup)
{
    // cols = 10, group = 4 -> groups of 4, 4, 2.
    const support::MatrixF w = gaussian(3, 10, 229);
    const QuantizedMatrix q = quantize_int4(w, 4);
    EXPECT_EQ(q.scales.cols(), 3u);
    const support::MatrixF d = dequantize(q);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 10; ++c) {
            EXPECT_LE(std::fabs(w.at(r, c) - d.at(r, c)),
                      max_abs_error_bound(q));
        }
    }
}

class GroupSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupSizeTest, QuantizationIsUnbiasedOnSymmetricData)
{
    const support::MatrixF w = gaussian(8, 1024, 233);
    const QuantizedMatrix q = quantize_int4(w, GetParam());
    double bias = 0.0;
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
            bias += q.dequantize_at(r, c) - w.at(r, c);
        }
    }
    bias /= static_cast<double>(w.size());
    // Symmetric rounding on symmetric data: near-zero mean error.
    EXPECT_LT(std::fabs(bias), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupSizeTest,
                         ::testing::Values(16, 32, 64, 128, 256));

}  // namespace
}  // namespace quant
}  // namespace mugi
