#include "quant/kv_cache.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace mugi {
namespace quant {
namespace {

support::MatrixF
random_heads(std::size_t heads, std::size_t dim, std::mt19937& rng)
{
    support::MatrixF m(heads, dim);
    support::fill_gaussian(m, rng, 0.0f, 1.0f);
    return m;
}

TEST(KvCache, FloatStorageIsExact)
{
    std::mt19937 rng(241);
    KvCache cache(4, 16, KvPrecision::kFloat);
    std::vector<support::MatrixF> ks, vs;
    for (int t = 0; t < 10; ++t) {
        ks.push_back(random_heads(4, 16, rng));
        vs.push_back(random_heads(4, 16, rng));
        cache.append(ks.back(), vs.back());
    }
    EXPECT_EQ(cache.length(), 10u);
    std::vector<float> out(16);
    for (std::size_t h = 0; h < 4; ++h) {
        for (std::size_t t = 0; t < 10; ++t) {
            cache.read_key(h, t, out.data());
            for (std::size_t d = 0; d < 16; ++d) {
                EXPECT_EQ(out[d], ks[t].at(h, d));
            }
            cache.read_value(h, t, out.data());
            for (std::size_t d = 0; d < 16; ++d) {
                EXPECT_EQ(out[d], vs[t].at(h, d));
            }
        }
    }
}

TEST(KvCache, Int4ErrorBounded)
{
    std::mt19937 rng(251);
    KvCache cache(2, 32, KvPrecision::kInt4);
    std::vector<support::MatrixF> ks;
    for (int t = 0; t < 20; ++t) {
        ks.push_back(random_heads(2, 32, rng));
        cache.append(ks.back(), ks.back());
    }
    std::vector<float> out(32);
    for (std::size_t h = 0; h < 2; ++h) {
        for (std::size_t t = 0; t < 20; ++t) {
            cache.read_key(h, t, out.data());
            const float scale = cache.key_scale(h, t);
            for (std::size_t d = 0; d < 32; ++d) {
                // Half-step quantization error plus BF16 scale round.
                EXPECT_LE(std::fabs(out[d] - ks[t].at(h, d)),
                          scale * 0.51f + 1e-6f);
            }
        }
    }
}

TEST(KvCache, Int4CompressionFactor)
{
    std::mt19937 rng(257);
    KvCache fp(8, 128, KvPrecision::kFloat);
    KvCache q4(8, 128, KvPrecision::kInt4);
    for (int t = 0; t < 64; ++t) {
        const auto k = random_heads(8, 128, rng);
        const auto v = random_heads(8, 128, rng);
        fp.append(k, v);
        q4.append(k, v);
    }
    // Sec. 2.3.3: ~4x footprint reduction (minus scale overhead).
    const double ratio = static_cast<double>(fp.byte_size()) /
                         static_cast<double>(q4.byte_size());
    EXPECT_GT(ratio, 3.5);
    EXPECT_LE(ratio, 4.0);
}

TEST(KvCache, CodesAreValidInt4)
{
    std::mt19937 rng(263);
    KvCache cache(1, 8, KvPrecision::kInt4);
    cache.append(random_heads(1, 8, rng), random_heads(1, 8, rng));
    for (std::size_t d = 0; d < 8; ++d) {
        const numerics::Int4 code = cache.key_code(0, 0, d);
        EXPECT_GE(code.value(), -7);
        EXPECT_LE(code.value(), 7);
        // Fits the 8-cycle temporal sweep of the Mugi rows.
        EXPECT_LT(code.magnitude, 8);
    }
}

TEST(KvCache, AttentionScoreErrorSmall)
{
    // End-to-end KVQ sanity: dot products against quantized keys stay
    // close, which is what keeps KVQ perplexity deltas at ~0.02
    // (Sec. 2.3.3).
    std::mt19937 rng(269);
    const std::size_t hd = 64;
    KvCache exact(1, hd, KvPrecision::kFloat);
    KvCache quant(1, hd, KvPrecision::kInt4);
    for (int t = 0; t < 32; ++t) {
        const auto k = random_heads(1, hd, rng);
        exact.append(k, k);
        quant.append(k, k);
    }
    support::MatrixF qvec = random_heads(1, hd, rng);
    std::vector<float> ke(hd), kq(hd);
    for (std::size_t t = 0; t < 32; ++t) {
        exact.read_key(0, t, ke.data());
        quant.read_key(0, t, kq.data());
        float s_exact = 0.0f, s_quant = 0.0f;
        for (std::size_t d = 0; d < hd; ++d) {
            s_exact += qvec.at(0, d) * ke[d];
            s_quant += qvec.at(0, d) * kq[d];
        }
        // Relative to the score scale sqrt(hd) ~ 8.
        EXPECT_NEAR(s_quant, s_exact, 2.5f) << t;
    }
}

TEST(KvCache, MemoryBytesIsExactPerPrecision)
{
    // memory_bytes() is the admission-budget footprint: packed INT4
    // nibbles + one BF16 scale per K/V vector, or full float storage.
    const std::size_t heads = 8, hd = 64;
    const std::size_t int4_per_pos = 2 * heads * (hd / 2 + 2);
    const std::size_t float_per_pos = 2 * heads * hd * sizeof(float);
    EXPECT_EQ(KvCache::bytes_per_position(heads, hd,
                                          KvPrecision::kInt4),
              int4_per_pos);
    EXPECT_EQ(KvCache::bytes_per_position(heads, hd,
                                          KvPrecision::kFloat),
              float_per_pos);
    // Odd head_dim rounds the nibble packing up.
    EXPECT_EQ(KvCache::bytes_per_position(1, 5, KvPrecision::kInt4),
              2 * (3 + 2));

    std::mt19937 rng(31);
    KvCache quant(heads, hd, KvPrecision::kInt4);
    KvCache exact(heads, hd, KvPrecision::kFloat);
    EXPECT_EQ(quant.memory_bytes(), 0u);
    for (int t = 1; t <= 5; ++t) {
        const auto kv = random_heads(heads, hd, rng);
        quant.append(kv, kv);
        exact.append(kv, kv);
        // Growth is linear and visible -- the quantity a scheduler's
        // KV budget bounds.
        EXPECT_EQ(quant.memory_bytes(),
                  static_cast<std::size_t>(t) * int4_per_pos);
        EXPECT_EQ(exact.memory_bytes(),
                  static_cast<std::size_t>(t) * float_per_pos);
    }
    // byte_size() models BF16-equivalent float storage (2 B/elem),
    // so the exact float footprint is twice the modeled one; INT4 is
    // identical under both accountings.
    EXPECT_EQ(exact.memory_bytes(), 2 * exact.byte_size());
    EXPECT_EQ(quant.memory_bytes(), quant.byte_size());
}

}  // namespace
}  // namespace quant
}  // namespace mugi
