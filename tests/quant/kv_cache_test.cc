#include "quant/kv_cache.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace mugi {
namespace quant {
namespace {

support::MatrixF
random_heads(std::size_t heads, std::size_t dim, std::mt19937& rng)
{
    support::MatrixF m(heads, dim);
    support::fill_gaussian(m, rng, 0.0f, 1.0f);
    return m;
}

TEST(KvCache, FloatStorageIsExact)
{
    std::mt19937 rng(241);
    KvCache cache(4, 16, KvPrecision::kFloat);
    std::vector<support::MatrixF> ks, vs;
    for (int t = 0; t < 10; ++t) {
        ks.push_back(random_heads(4, 16, rng));
        vs.push_back(random_heads(4, 16, rng));
        cache.append(ks.back(), vs.back());
    }
    EXPECT_EQ(cache.length(), units::Positions(10));
    std::vector<float> out(16);
    for (std::size_t h = 0; h < 4; ++h) {
        for (std::size_t t = 0; t < 10; ++t) {
            cache.read_key(h, units::Positions(t), out.data());
            for (std::size_t d = 0; d < 16; ++d) {
                EXPECT_EQ(out[d], ks[t].at(h, d));
            }
            cache.read_value(h, units::Positions(t), out.data());
            for (std::size_t d = 0; d < 16; ++d) {
                EXPECT_EQ(out[d], vs[t].at(h, d));
            }
        }
    }
}

TEST(KvCache, Int4ErrorBounded)
{
    std::mt19937 rng(251);
    KvCache cache(2, 32, KvPrecision::kInt4);
    std::vector<support::MatrixF> ks;
    for (int t = 0; t < 20; ++t) {
        ks.push_back(random_heads(2, 32, rng));
        cache.append(ks.back(), ks.back());
    }
    std::vector<float> out(32);
    for (std::size_t h = 0; h < 2; ++h) {
        for (std::size_t t = 0; t < 20; ++t) {
            cache.read_key(h, units::Positions(t), out.data());
            const float scale = cache.key_scale(h, units::Positions(t));
            for (std::size_t d = 0; d < 32; ++d) {
                // Half-step quantization error plus BF16 scale round.
                EXPECT_LE(std::fabs(out[d] - ks[t].at(h, d)),
                          scale * 0.51f + 1e-6f);
            }
        }
    }
}

TEST(KvCache, Int4CompressionFactor)
{
    std::mt19937 rng(257);
    KvCache fp(8, 128, KvPrecision::kFloat);
    KvCache q4(8, 128, KvPrecision::kInt4);
    for (int t = 0; t < 64; ++t) {
        const auto k = random_heads(8, 128, rng);
        const auto v = random_heads(8, 128, rng);
        fp.append(k, v);
        q4.append(k, v);
    }
    // Sec. 2.3.3's ~4x reduction is against the BF16 storage the
    // datapath assumes; against the exact float storage the device
    // accounting reports it is ~8x (minus scale overhead).  Equal
    // lengths page into equally many blocks, so block rounding
    // cancels out of the ratio.
    const double ratio = static_cast<double>(fp.memory_bytes().value()) /
                         static_cast<double>(q4.memory_bytes().value());
    EXPECT_GT(ratio, 7.0);
    EXPECT_LE(ratio, 8.0);
}

TEST(KvCache, CodesAreValidInt4)
{
    std::mt19937 rng(263);
    KvCache cache(1, 8, KvPrecision::kInt4);
    cache.append(random_heads(1, 8, rng), random_heads(1, 8, rng));
    for (std::size_t d = 0; d < 8; ++d) {
        const numerics::Int4 code = cache.key_code(0, units::Positions(0), d);
        EXPECT_GE(code.value(), -7);
        EXPECT_LE(code.value(), 7);
        // Fits the 8-cycle temporal sweep of the Mugi rows.
        EXPECT_LT(code.magnitude, 8);
    }
}

TEST(KvCache, AttentionScoreErrorSmall)
{
    // End-to-end KVQ sanity: dot products against quantized keys stay
    // close, which is what keeps KVQ perplexity deltas at ~0.02
    // (Sec. 2.3.3).
    std::mt19937 rng(269);
    const std::size_t hd = 64;
    KvCache exact(1, hd, KvPrecision::kFloat);
    KvCache quant(1, hd, KvPrecision::kInt4);
    for (int t = 0; t < 32; ++t) {
        const auto k = random_heads(1, hd, rng);
        exact.append(k, k);
        quant.append(k, k);
    }
    support::MatrixF qvec = random_heads(1, hd, rng);
    std::vector<float> ke(hd), kq(hd);
    for (std::size_t t = 0; t < 32; ++t) {
        exact.read_key(0, units::Positions(t), ke.data());
        quant.read_key(0, units::Positions(t), kq.data());
        float s_exact = 0.0f, s_quant = 0.0f;
        for (std::size_t d = 0; d < hd; ++d) {
            s_exact += qvec.at(0, d) * ke[d];
            s_quant += qvec.at(0, d) * kq[d];
        }
        // Relative to the score scale sqrt(hd) ~ 8.
        EXPECT_NEAR(s_quant, s_exact, 2.5f) << t;
    }
}

TEST(KvCache, MemoryBytesIsBlockExactPerPrecision)
{
    // memory_bytes() is the admission-budget footprint: packed INT4
    // nibbles + one BF16 scale per K/V vector, or full float storage,
    // rounded up to the blocks actually allocated from the pool.
    const std::size_t heads = 8, hd = 64;
    const std::size_t int4_per_pos = 2 * heads * (hd / 2 + 2);
    const std::size_t float_per_pos = 2 * heads * hd * sizeof(float);
    EXPECT_EQ(KvCache::bytes_per_position(heads, hd,
                                          KvPrecision::kInt4),
              units::Bytes(int4_per_pos));
    EXPECT_EQ(KvCache::bytes_per_position(heads, hd,
                                          KvPrecision::kFloat),
              units::Bytes(float_per_pos));
    // Odd head_dim rounds the nibble packing up.
    EXPECT_EQ(KvCache::bytes_per_position(1, 5, KvPrecision::kInt4),
              units::Bytes(2 * (3 + 2)));

    std::mt19937 rng(31);
    const std::size_t B = 2;  // Tokens per block.
    BlockPool pool(units::Bytes(0), units::Tokens(B));
    KvCache quant(heads, hd, KvPrecision::kInt4, &pool);
    KvCache exact(heads, hd, KvPrecision::kFloat, &pool);
    EXPECT_EQ(quant.memory_bytes(), units::Bytes(0));
    EXPECT_EQ(quant.block_bytes(), units::Bytes(B * int4_per_pos));
    EXPECT_EQ(exact.block_bytes(), units::Bytes(B * float_per_pos));
    for (std::size_t t = 1; t <= 5; ++t) {
        const auto kv = random_heads(heads, hd, rng);
        quant.append(kv, kv);
        exact.append(kv, kv);
        // Growth is block-granular and visible -- the quantity a
        // scheduler's KV budget bounds.
        const std::size_t blocks = (t + B - 1) / B;
        EXPECT_EQ(quant.blocks_in_use(), units::Blocks(blocks));
        EXPECT_EQ(quant.memory_bytes(),
                  units::Bytes(blocks * B * int4_per_pos));
        EXPECT_EQ(exact.memory_bytes(),
                  units::Bytes(blocks * B * float_per_pos));
    }
    // The shared pool accounts both caches' physical bytes exactly.
    EXPECT_EQ(pool.bytes_in_use(),
              quant.memory_bytes() + exact.memory_bytes());
    // An append within the last block costs nothing new; crossing a
    // block boundary allocates exactly one more block.
    const units::Bytes before = pool.bytes_in_use();
    const auto kv6 = random_heads(heads, hd, rng);
    quant.append(kv6, kv6);  // Fills block 3 (positions 5-6).
    EXPECT_EQ(pool.bytes_in_use(), before);
    quant.append(kv6, kv6);  // Opens block 4.
    EXPECT_EQ(pool.bytes_in_use(), before + quant.block_bytes());
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    // The deprecated name delegates to the exact accounting.
    EXPECT_EQ(exact.byte_size(), exact.memory_bytes());
    EXPECT_EQ(quant.byte_size(), quant.memory_bytes());
#pragma GCC diagnostic pop
}

TEST(KvCache, PagedReadsAreByteIdenticalAcrossBlockSizes)
{
    // The paged-cache acceptance bar: block layout must never touch
    // numerics.  A block size >= length is the former contiguous
    // storage, so agreement across block sizes (including the
    // private-pool default) proves paged reads are byte-identical to
    // the contiguous cache for both precisions.
    const std::size_t heads = 3, hd = 7, T = 33;
    std::mt19937 rng(101);
    std::vector<support::MatrixF> ks, vs;
    for (std::size_t t = 0; t < T; ++t) {
        ks.push_back(random_heads(heads, hd, rng));
        vs.push_back(random_heads(heads, hd, rng));
    }
    for (const KvPrecision precision :
         {KvPrecision::kFloat, KvPrecision::kInt4}) {
        BlockPool contiguous(units::Bytes(0), units::Tokens(T));  // One block holds everything.
        BlockPool tiny(units::Bytes(0), units::Tokens(1));
        BlockPool odd(units::Bytes(0), units::Tokens(5));
        KvCache reference(heads, hd, precision, &contiguous);
        std::vector<KvCache> paged;
        paged.emplace_back(heads, hd, precision, &tiny);
        paged.emplace_back(heads, hd, precision, &odd);
        paged.emplace_back(heads, hd, precision);  // Private pool.
        for (std::size_t t = 0; t < T; ++t) {
            reference.append(ks[t], vs[t]);
            for (KvCache& cache : paged) {
                cache.append(ks[t], vs[t]);
            }
        }
        std::vector<float> want(hd), got(hd);
        for (std::size_t h = 0; h < heads; ++h) {
            for (std::size_t t = 0; t < T; ++t) {
                reference.read_key(h, units::Positions(t), want.data());
                for (const KvCache& cache : paged) {
                    cache.read_key(h, units::Positions(t), got.data());
                    for (std::size_t d = 0; d < hd; ++d) {
                        EXPECT_EQ(got[d], want[d])
                            << "key h=" << h << " t=" << t;
                    }
                }
                reference.read_value(h, units::Positions(t), want.data());
                for (const KvCache& cache : paged) {
                    cache.read_value(h, units::Positions(t), got.data());
                    for (std::size_t d = 0; d < hd; ++d) {
                        EXPECT_EQ(got[d], want[d])
                            << "value h=" << h << " t=" << t;
                    }
                }
                if (precision == KvPrecision::kInt4) {
                    for (const KvCache& cache : paged) {
                        EXPECT_EQ(cache.key_scale(h, units::Positions(t)),
                                  reference.key_scale(h, units::Positions(t)));
                        for (std::size_t d = 0; d < hd; ++d) {
                            EXPECT_EQ(cache.key_code(h, units::Positions(t), d),
                                      reference.key_code(h, units::Positions(t), d));
                        }
                    }
                }
            }
        }
    }
}

TEST(KvCache, BatchedRangeReadsAreByteIdenticalToPerPositionReads)
{
    // read_keys/read_values (the fused-decode gather) must decode
    // exactly the bytes read_key/read_value produce, for both
    // precisions, across block-boundary-straddling ranges and block
    // sizes -- including an empty range and the full context.
    const std::size_t heads = 3, hd = 7, T = 23;
    std::mt19937 rng(811);
    std::vector<support::MatrixF> ks, vs;
    for (std::size_t t = 0; t < T; ++t) {
        ks.push_back(random_heads(heads, hd, rng));
        vs.push_back(random_heads(heads, hd, rng));
    }
    for (const KvPrecision precision :
         {KvPrecision::kFloat, KvPrecision::kInt4}) {
        for (const std::size_t block_tokens : {1u, 5u, 64u}) {
            BlockPool pool(units::Bytes(0),
                           units::Tokens(block_tokens));
            KvCache cache(heads, hd, precision, &pool);
            for (std::size_t t = 0; t < T; ++t) {
                cache.append(ks[t], vs[t]);
            }
            const struct {
                std::size_t begin, end;
            } ranges[] = {{0, T}, {0, 1}, {4, 7}, {3, 21},
                          {22, 23}, {6, 6}};
            std::vector<float> want(hd);
            for (const auto& range : ranges) {
                const std::size_t count = range.end - range.begin;
                std::vector<float> keys(count * hd, -1.0f);
                std::vector<float> values(count * hd, -1.0f);
                for (std::size_t h = 0; h < heads; ++h) {
                    cache.read_keys(h, units::Positions(range.begin),
                                    units::Positions(range.end),
                                    keys.data());
                    cache.read_values(h,
                                      units::Positions(range.begin),
                                      units::Positions(range.end),
                                      values.data());
                    for (std::size_t i = 0; i < count; ++i) {
                        cache.read_key(
                            h, units::Positions(range.begin + i),
                            want.data());
                        for (std::size_t d = 0; d < hd; ++d) {
                            EXPECT_EQ(keys[i * hd + d], want[d])
                                << "key h=" << h << " pos "
                                << range.begin + i;
                        }
                        cache.read_value(
                            h, units::Positions(range.begin + i),
                            want.data());
                        for (std::size_t d = 0; d < hd; ++d) {
                            EXPECT_EQ(values[i * hd + d], want[d])
                                << "value h=" << h << " pos "
                                << range.begin + i;
                        }
                    }
                }
            }
        }
    }
}

TEST(KvCache, MoveLeavesTheSourceDrainedAndInert)
{
    std::mt19937 rng(601);
    BlockPool pool(units::Bytes(0), units::Tokens(2));
    KvCache source(2, 8, KvPrecision::kFloat, &pool);
    for (int t = 0; t < 3; ++t) {
        const auto kv = random_heads(2, 8, rng);
        source.append(kv, kv);
    }
    const units::Bytes moved_bytes = source.memory_bytes();

    KvCache target = std::move(source);
    EXPECT_EQ(target.length(), units::Positions(3));
    EXPECT_EQ(target.memory_bytes(), moved_bytes);
    // The source is drained AND inert: no stale length, no blocks,
    // and -- the regression this pins -- no pool pointer either, so
    // a use-after-move cannot silently allocate from storage that
    // moved away with the destination.  Destroying it stays safe.
    EXPECT_EQ(source.length(), units::Positions(0));
    EXPECT_EQ(source.memory_bytes(), units::Bytes(0));
    EXPECT_EQ(source.blocks_in_use(), units::Blocks(0));
    EXPECT_EQ(pool.bytes_in_use(), moved_bytes);

    // Move assignment releases the target's old blocks first and
    // drains its source the same way.
    KvCache replacement(2, 8, KvPrecision::kFloat, &pool);
    const auto kv = random_heads(2, 8, rng);
    replacement.append(kv, kv);
    target = std::move(replacement);
    EXPECT_EQ(target.length(), units::Positions(1));
    EXPECT_EQ(pool.bytes_in_use(), target.memory_bytes());
    EXPECT_EQ(replacement.length(), units::Positions(0));
    EXPECT_EQ(replacement.memory_bytes(), units::Bytes(0));
}

TEST(KvCache, MovedFromOwnedPoolCacheOutlivesTheDestination)
{
    // The PR-3 landmine: a cache built without a shared pool owns its
    // pool; moving the cache moves the pool, and the moved-from
    // object used to keep a raw pointer into it.  Destroying the
    // destination first must leave the (nulled) source harmless.
    std::mt19937 rng(607);
    KvCache source(2, 8, KvPrecision::kInt4);  // Private owned pool.
    const auto kv = random_heads(2, 8, rng);
    source.append(kv, kv);
    {
        const KvCache target = std::move(source);
        EXPECT_EQ(target.length(), units::Positions(1));
    }  // Destination (and the owned pool) die here.
    // Source destructor runs at end of scope against no pool; under
    // the old code its pool_ would dangle into freed storage.
    EXPECT_EQ(source.length(), units::Positions(0));
    EXPECT_EQ(source.memory_bytes(), units::Bytes(0));
#ifndef NDEBUG
    EXPECT_DEATH(source.append(kv, kv), "moved-from");
#endif
}

TEST(KvCache, ReusedBlocksComeBackZeroedForTheNibbleOrPath)
{
    // The INT4 append path ORs nibbles into block bytes, so it
    // silently depends on allocate() zero-filling free-list blocks.
    // Pin the end-to-end consequence: appending through a reused
    // dirty block reads back exactly what a fresh cache stores.
    std::mt19937 rng(613);
    BlockPool pool(units::Bytes(0), units::Tokens(4));
    KvCache cache(2, 8, KvPrecision::kInt4, &pool);
    for (int t = 0; t < 6; ++t) {
        const auto kv = random_heads(2, 8, rng);
        cache.append(kv, kv);
    }
    // Freeing returns the (now thoroughly dirty) blocks to the
    // per-size free lists.
    cache.release_blocks();

    std::vector<support::MatrixF> ks;
    KvCache fresh(2, 8, KvPrecision::kInt4);  // Never-reused blocks.
    for (int t = 0; t < 6; ++t) {
        ks.push_back(random_heads(2, 8, rng));
        cache.append(ks.back(), ks.back());  // Reuses freed blocks.
        fresh.append(ks.back(), ks.back());
    }
    std::vector<float> got(8), want(8);
    for (std::size_t h = 0; h < 2; ++h) {
        for (std::size_t t = 0; t < 6; ++t) {
            cache.read_key(h, units::Positions(t), got.data());
            fresh.read_key(h, units::Positions(t), want.data());
            for (std::size_t d = 0; d < 8; ++d) {
                EXPECT_EQ(got[d], want[d]) << "h=" << h << " t=" << t;
            }
            EXPECT_EQ(cache.key_scale(h, units::Positions(t)), fresh.key_scale(h, units::Positions(t)));
        }
    }
}

// ---- Prefix sharing and copy-on-write. ----

TEST(KvCache, SharedPrefixReadsAreByteIdenticalForBothPrecisions)
{
    std::mt19937 rng(701);
    for (const KvPrecision precision :
         {KvPrecision::kFloat, KvPrecision::kInt4}) {
        BlockPool pool(units::Bytes(0), units::Tokens(4));
        KvCache donor(2, 8, precision, &pool);
        std::vector<support::MatrixF> ks, vs;
        for (int t = 0; t < 10; ++t) {
            ks.push_back(random_heads(2, 8, rng));
            vs.push_back(random_heads(2, 8, rng));
            donor.append(ks[static_cast<std::size_t>(t)],
                         vs[static_cast<std::size_t>(t)]);
        }
        const units::Bytes donor_bytes = donor.memory_bytes();

        KvCache sharer(2, 8, precision, &pool);
        sharer.share_prefix_from(donor, units::Positions(8));  // Two full blocks.
        EXPECT_EQ(sharer.length(), units::Positions(8));
        EXPECT_EQ(sharer.blocks_in_use(), units::Blocks(2));
        EXPECT_EQ(sharer.shared_blocks(), units::Blocks(2));
        EXPECT_EQ(donor.shared_blocks(), units::Blocks(2));
        // The pool accounts the shared blocks exactly once.
        EXPECT_EQ(pool.bytes_in_use(), donor_bytes);
        EXPECT_EQ(pool.shared_blocks(), units::Blocks(2));

        std::vector<float> got(8), want(8);
        for (std::size_t h = 0; h < 2; ++h) {
            for (std::size_t t = 0; t < 8; ++t) {
                donor.read_key(h, units::Positions(t), want.data());
                sharer.read_key(h, units::Positions(t), got.data());
                for (std::size_t d = 0; d < 8; ++d) {
                    EXPECT_EQ(got[d], want[d]);
                }
                donor.read_value(h, units::Positions(t), want.data());
                sharer.read_value(h, units::Positions(t), got.data());
                for (std::size_t d = 0; d < 8; ++d) {
                    EXPECT_EQ(got[d], want[d]);
                }
            }
        }
    }
}

TEST(KvCache, AppendAfterSharedPrefixNeverTouchesTheDonor)
{
    // Block-aligned sharing: the sharer's appends land in fresh
    // private blocks; the donor's reads (and its own appends) are
    // unaffected, for both precisions.
    std::mt19937 rng(703);
    for (const KvPrecision precision :
         {KvPrecision::kFloat, KvPrecision::kInt4}) {
        BlockPool pool(units::Bytes(0), units::Tokens(4));
        KvCache donor(2, 8, precision, &pool);
        std::vector<support::MatrixF> ks;
        for (int t = 0; t < 8; ++t) {
            ks.push_back(random_heads(2, 8, rng));
            donor.append(ks.back(), ks.back());
        }
        KvCache sharer(2, 8, precision, &pool);
        sharer.share_prefix_from(donor, units::Positions(8));

        // Diverge: both append different continuations.
        const auto donor_tail = random_heads(2, 8, rng);
        const auto sharer_tail = random_heads(2, 8, rng);
        donor.append(donor_tail, donor_tail);
        sharer.append(sharer_tail, sharer_tail);
        EXPECT_EQ(donor.length(), units::Positions(9));
        EXPECT_EQ(sharer.length(), units::Positions(9));

        // The shared prefix still reads identically in both...
        std::vector<float> got(8), want(8);
        for (std::size_t t = 0; t < 8; ++t) {
            donor.read_key(0, units::Positions(t), want.data());
            sharer.read_key(0, units::Positions(t), got.data());
            for (std::size_t d = 0; d < 8; ++d) {
                EXPECT_EQ(got[d], want[d]);
            }
        }
        // ...and the tails stayed private.
        donor.read_key(0, units::Positions(8), want.data());
        sharer.read_key(0, units::Positions(8), got.data());
        bool same = true;
        for (std::size_t d = 0; d < 8; ++d) {
            same &= got[d] == want[d];
        }
        EXPECT_FALSE(same) << "tails must diverge";
    }
}

TEST(KvCache, CopyOnWriteClonesAPartiallySharedBlock)
{
    // Non-block-aligned sharing shares the containing partial block;
    // the first append into it (by either cache) must clone it, and
    // the clone's unwritten region must read as zero so the INT4
    // nibble-OR path stays correct.
    std::mt19937 rng(709);
    for (const KvPrecision precision :
         {KvPrecision::kFloat, KvPrecision::kInt4}) {
        BlockPool pool(units::Bytes(0), units::Tokens(4));
        KvCache donor(2, 8, precision, &pool);
        std::vector<support::MatrixF> ks;
        for (int t = 0; t < 6; ++t) {  // Blocks: [0-3], [4-5].
            ks.push_back(random_heads(2, 8, rng));
            donor.append(ks.back(), ks.back());
        }
        KvCache sharer(2, 8, precision, &pool);
        sharer.share_prefix_from(donor, units::Positions(6));  // Includes partial block.
        EXPECT_EQ(pool.shared_blocks(), units::Blocks(2));
        const units::Bytes before = pool.bytes_in_use();

        // Sharer appends into the shared partial block: CoW.
        const auto sharer_tail = random_heads(2, 8, rng);
        sharer.append(sharer_tail, sharer_tail);
        EXPECT_EQ(pool.bytes_in_use(),
                  before + donor.block_bytes());
        EXPECT_EQ(pool.shared_blocks(), units::Blocks(1));  // Tail block unshared.

        // Donor's view of position 6's slot never changed: appending
        // its own continuation there still reads back cleanly.
        const auto donor_tail = random_heads(2, 8, rng);
        donor.append(donor_tail, donor_tail);

        std::vector<float> got(8), want(8);
        // Shared full block + the cloned prefix read identically.
        for (std::size_t t = 0; t < 6; ++t) {
            donor.read_key(1, units::Positions(t), want.data());
            sharer.read_key(1, units::Positions(t), got.data());
            for (std::size_t d = 0; d < 8; ++d) {
                EXPECT_EQ(got[d], want[d]) << "t=" << t;
            }
        }
        // Each cache's position 6 is its own append, bit-exact
        // against a fresh single-owner cache fed the same data.
        KvCache reference(2, 8, precision, &pool);
        for (int t = 0; t < 6; ++t) {
            reference.append(ks[static_cast<std::size_t>(t)],
                             ks[static_cast<std::size_t>(t)]);
        }
        reference.append(sharer_tail, sharer_tail);
        reference.read_key(0, units::Positions(6), want.data());
        sharer.read_key(0, units::Positions(6), got.data());
        for (std::size_t d = 0; d < 8; ++d) {
            EXPECT_EQ(got[d], want[d]);
        }
    }
}

TEST(KvCache, SharedBlocksFreeExactlyOnceWhenTheLastOwnerReleases)
{
    std::mt19937 rng(719);
    BlockPool pool(units::Bytes(0), units::Tokens(4));
    auto donor = std::make_unique<KvCache>(2, 8, KvPrecision::kInt4,
                                           &pool);
    std::vector<support::MatrixF> ks;
    for (int t = 0; t < 8; ++t) {
        ks.push_back(random_heads(2, 8, rng));
        donor->append(ks.back(), ks.back());
    }
    const units::Bytes shared_bytes = donor->memory_bytes();
    KvCache sharer(2, 8, KvPrecision::kInt4, &pool);
    sharer.share_prefix_from(*donor, units::Positions(8));
    EXPECT_EQ(pool.bytes_in_use(), shared_bytes);

    // Donor dies first (its request finished / was preempted): the
    // sharer's blocks survive, and its reads stay intact.
    donor.reset();
    EXPECT_EQ(pool.bytes_in_use(), shared_bytes);
    EXPECT_EQ(pool.shared_blocks(), units::Blocks(0));
    std::vector<float> got(8);
    KvCache reference(2, 8, KvPrecision::kInt4, &pool);
    for (const auto& k : ks) {
        reference.append(k, k);
    }
    std::vector<float> want(8);
    for (std::size_t t = 0; t < 8; ++t) {
        sharer.read_key(0, units::Positions(t), got.data());
        reference.read_key(0, units::Positions(t), want.data());
        for (std::size_t d = 0; d < 8; ++d) {
            EXPECT_EQ(got[d], want[d]);
        }
    }
    reference.release_blocks();
    // Only when the last owner releases does the storage return.
    sharer.release_blocks();
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(0));
}

TEST(KvCache, ReleaseReturnsBlocksToThePool)
{
    std::mt19937 rng(401);
    BlockPool pool(units::Bytes(0), units::Tokens(4));
    KvCache outer(2, 8, KvPrecision::kInt4, &pool);
    for (int t = 0; t < 6; ++t) {
        const auto kv = random_heads(2, 8, rng);
        outer.append(kv, kv);
    }
    const units::Bytes outer_bytes = outer.memory_bytes();
    EXPECT_EQ(pool.bytes_in_use(), outer_bytes);
    {
        KvCache inner(2, 8, KvPrecision::kInt4, &pool);
        const auto kv = random_heads(2, 8, rng);
        inner.append(kv, kv);
        EXPECT_EQ(pool.bytes_in_use(),
                  outer_bytes + inner.memory_bytes());
    }  // Destructor frees the inner cache's block.
    EXPECT_EQ(pool.bytes_in_use(), outer_bytes);
    // release_blocks() is the preemption path: everything returns at
    // once and the cache restarts from length 0.
    outer.release_blocks();
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(outer.length(), units::Positions(0));
    EXPECT_EQ(outer.memory_bytes(), units::Bytes(0));
    const auto kv = random_heads(2, 8, rng);
    outer.append(kv, kv);
    EXPECT_EQ(outer.length(), units::Positions(1));
    EXPECT_EQ(pool.bytes_in_use(), outer.block_bytes());
}

}  // namespace
}  // namespace quant
}  // namespace mugi
