/**
 * @file
 * Retirement-path contract of serve::Scheduler: cancel, deadline
 * expiry and shutdown release KV blocks *exactly* as a natural
 * finish does.  Every test ends on the same two assertions -- the
 * pool reports zero bytes in use and check_invariants() comes back
 * green -- because "no leaked blocks on the early-exit paths" is the
 * acceptance number the serving front-end rests on.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/scheduler.h"

namespace mugi {
namespace serve {
namespace {

/** Eval-scale functional engine shared by the functional tests. */
struct FunctionalRig {
    model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    std::shared_ptr<model::TransformerModel> transformer =
        std::make_shared<model::TransformerModel>(config, 321);
    Engine engine{sim::make_mugi(64), transformer};

    Request
    request(std::size_t prompt_len, std::size_t max_new,
            std::uint32_t seed) const
    {
        Request r;
        r.prompt =
            model::synthetic_tokens(prompt_len, config.vocab, seed);
        r.max_new_tokens = units::Tokens(max_new);
        return r;
    }
};

TEST(Cancellation, MidPrefillChunkReleasesEveryBlock)
{
    FunctionalRig rig;
    SchedulerConfig config;
    config.prefill_chunk_tokens = units::Tokens(4);
    Scheduler scheduler(rig.engine, config);

    // 18-token prompt, 4-token chunks: prefill needs 5 iterations.
    const std::uint64_t id =
        scheduler.submit(rig.request(18, 8, 41));
    ASSERT_TRUE(scheduler.step());
    ASSERT_TRUE(scheduler.step());

    // Mid-prefill: admitted, blocks held, not one token out yet.
    const ServerStats before = scheduler.stats();
    EXPECT_EQ(before.active, 1u);
    EXPECT_GT(before.kv_bytes_in_use, units::Bytes(0));
    EXPECT_EQ(before.generated_tokens, units::Tokens(0));

    EXPECT_TRUE(scheduler.cancel(id));
    EXPECT_FALSE(scheduler.cancel(id));  // Already retired.

    std::vector<FinishedRequest> finished =
        scheduler.take_finished();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].reason, FinishReason::kCancelled);
    EXPECT_EQ(finished[0].generated, units::Tokens(0));
    EXPECT_EQ(scheduler.stats().cancelled, 1u);

    EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(scheduler.check_invariants(), "");
}

TEST(Cancellation, MidDecodeKeepsAPrefixOfTheUncancelledStream)
{
    FunctionalRig rig;

    // Reference: the same request, never cancelled.
    std::vector<int> full;
    {
        Scheduler scheduler(rig.engine, {});
        Request r = rig.request(9, 12, 42);
        scheduler.submit(r);
        std::vector<FinishedRequest> finished = scheduler.run();
        ASSERT_EQ(finished.size(), 1u);
        full = finished[0].tokens;
        ASSERT_EQ(full.size(), 12u);
    }

    Scheduler scheduler(rig.engine, {});
    const std::uint64_t id = scheduler.submit(rig.request(9, 12, 42));
    // Step until a few tokens are out, then cut the request off.
    while (scheduler.stats().generated_tokens < units::Tokens(3)) {
        ASSERT_TRUE(scheduler.step());
    }
    EXPECT_TRUE(scheduler.cancel(id));

    std::vector<FinishedRequest> finished =
        scheduler.take_finished();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].reason, FinishReason::kCancelled);
    const std::vector<int>& got = finished[0].tokens;
    ASSERT_GE(got.size(), 3u);
    ASSERT_LT(got.size(), 12u);
    // Cancellation changes when generation *stops*, never what was
    // generated: the emitted tokens are a bit-identical prefix.
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], full[i]) << "token " << i;
    }

    EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(scheduler.check_invariants(), "");
}

/**
 * Budget sized so full-projection admission keeps exactly ONE
 * request resident (the calibrated 12-group recipe: each request
 * projects to ceil((24 + 60 + 1) / 8) = 11 groups), serializing the
 * rest into the queue.
 */
SchedulerConfig
one_resident_config(const model::ModelConfig& model)
{
    SchedulerConfig config;
    config.admission = AdmissionMode::kFullProjection;
    config.kv_block_tokens = units::Tokens(8);
    config.kv_budget_bytes =
        sim::kv_footprint(model, units::Positions(1),
                          quant::KvPrecision::kInt4,
                          units::Tokens(8))
            .paged_bytes *
        12;
    config.prefill_chunk_tokens = units::Tokens(24);
    config.max_batch = 8;
    return config;
}

Request
small_analytic_request()
{
    Request r;
    r.analytic_prompt_tokens = units::Tokens(24);
    r.max_new_tokens = units::Tokens(60);
    return r;
}

TEST(Cancellation, QueuedRequestRetiresWithoutEverBeingAdmitted)
{
    // Analytic serving with a budget sized for one resident request:
    // the second stays queued and is cancelled from the queue.
    const model::ModelConfig model = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), model);
    Scheduler scheduler(engine, one_resident_config(model));

    scheduler.submit(small_analytic_request());
    const std::uint64_t queued_id =
        scheduler.submit(small_analytic_request());

    ASSERT_TRUE(scheduler.step());
    const ServerStats mid = scheduler.stats();
    ASSERT_EQ(mid.active, 1u);
    ASSERT_EQ(mid.queued, 1u);

    EXPECT_TRUE(scheduler.cancel(queued_id));
    std::vector<FinishedRequest> finished =
        scheduler.take_finished();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].id, queued_id);
    EXPECT_EQ(finished[0].reason, FinishReason::kCancelled);
    EXPECT_EQ(finished[0].generated, units::Tokens(0));
    EXPECT_GE(finished[0].queue_s(), 0.0);

    // The survivor still runs to natural completion.
    std::vector<FinishedRequest> rest = scheduler.run();
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].reason, FinishReason::kMaxTokens);

    EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(scheduler.check_invariants(), "");
}

TEST(Cancellation, DeadlineExpiringDuringDecodeKeepsEmittedTokens)
{
    FunctionalRig rig;

    // Learn the request's natural milestones on the modeled clock.
    double first_token_s = 0.0, finished_s = 0.0;
    {
        Scheduler scheduler(rig.engine, {});
        scheduler.submit(rig.request(7, 10, 43));
        std::vector<FinishedRequest> finished = scheduler.run();
        ASSERT_EQ(finished.size(), 1u);
        first_token_s = finished[0].first_token_s;
        finished_s = finished[0].finished_s;
        ASSERT_LT(first_token_s, finished_s);
    }

    // Same request, deadline mid-decode: some tokens out, not all.
    Scheduler scheduler(rig.engine, {});
    Request r = rig.request(7, 10, 43);
    r.deadline_s = (first_token_s + finished_s) / 2.0;
    scheduler.submit(r);
    std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].reason, FinishReason::kDeadline);
    EXPECT_GT(finished[0].generated, units::Tokens(0));
    EXPECT_LT(finished[0].generated, units::Tokens(10));
    EXPECT_EQ(scheduler.stats().expired, 1u);

    EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(scheduler.check_invariants(), "");
}

TEST(Cancellation, ExpiredQueuedRequestIsNeverAdmitted)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    Scheduler scheduler(engine, {});

    // Arrives late with a deadline that passes while the first
    // request is still decoding: it must expire from the queue with
    // zero work done, not be admitted and then killed.
    Request first;
    first.analytic_prompt_tokens = units::Tokens(512);
    first.max_new_tokens = units::Tokens(64);
    scheduler.submit(first);

    Request doomed;
    doomed.analytic_prompt_tokens = units::Tokens(256);
    doomed.max_new_tokens = units::Tokens(8);
    doomed.arrival_time_s = 1e9;  // Arrives far in the future...
    doomed.deadline_s = 1e9;      // ...already at its deadline.
    const std::uint64_t doomed_id = scheduler.submit(doomed);

    std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 2u);
    for (const FinishedRequest& f : finished) {
        if (f.id == doomed_id) {
            EXPECT_EQ(f.reason, FinishReason::kDeadline);
            EXPECT_EQ(f.generated, units::Tokens(0));
        } else {
            EXPECT_EQ(f.reason, FinishReason::kMaxTokens);
        }
    }

    EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(scheduler.check_invariants(), "");
}

TEST(Cancellation, ShutdownWithInFlightAndQueuedReleasesEverything)
{
    const model::ModelConfig model = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), model);
    Scheduler scheduler(engine, one_resident_config(model));

    for (int i = 0; i < 3; ++i) {
        scheduler.submit(small_analytic_request());
    }
    ASSERT_TRUE(scheduler.step());
    ASSERT_TRUE(scheduler.step());
    const ServerStats mid = scheduler.stats();
    ASSERT_GE(mid.active, 1u);
    ASSERT_GE(mid.queued, 1u);
    ASSERT_GT(mid.kv_bytes_in_use, units::Bytes(0));

    // The non-draining shutdown path: everything retires *now*.
    EXPECT_EQ(scheduler.cancel_all(FinishReason::kShutdown), 3u);
    std::vector<FinishedRequest> finished =
        scheduler.take_finished();
    ASSERT_EQ(finished.size(), 3u);
    for (const FinishedRequest& f : finished) {
        EXPECT_EQ(f.reason, FinishReason::kShutdown);
    }
    EXPECT_FALSE(scheduler.step());  // Nothing left to do.

    EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(scheduler.check_invariants(), "");
}

TEST(Cancellation, CancelReportsFalseForUnknownIds)
{
    const Engine engine(sim::make_mugi(256), model::llama2_70b());
    Scheduler scheduler(engine, {});
    EXPECT_FALSE(scheduler.cancel(7));
    EXPECT_EQ(scheduler.cancel_all(), 0u);
    EXPECT_EQ(scheduler.check_invariants(), "");
}

}  // namespace
}  // namespace serve
}  // namespace mugi
