/**
 * @file
 * The acceptance contract of the serving API: a batched Engine::step
 * over N heterogeneous sessions must reproduce N independent
 * single-request decodes -- bit-identical functional numerics and
 * exactly-preserved op counts -- while sharing the per-step weight
 * stream.
 */

#include "serve/engine.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"

namespace mugi {
namespace serve {
namespace {

TEST(MixedWorkload, OpCountsMatchIndependentDecodes)
{
    const model::ModelConfig config = model::llama2_70b();
    const std::vector<std::size_t> contexts = {128, 512, 2048, 4096};
    const model::Workload mixed =
        model::build_mixed_decode_workload(config, contexts);

    std::uint64_t macs = 0, nonlinear = 0;
    for (const std::size_t c : contexts) {
        const model::Workload single =
            model::build_decode_workload(config, 1, c);
        macs += single.total_macs();
        nonlinear += single.total_nonlinear_elements();
    }
    // Compute is preserved exactly across the batching.
    EXPECT_EQ(mixed.total_macs(), macs);
    EXPECT_EQ(mixed.total_nonlinear_elements(), nonlinear);
    EXPECT_EQ(mixed.tokens(), contexts.size());

    // Weight traffic is shared: the batch streams the WOQ weights
    // once, an independent decode streams them per request.
    const model::Workload one =
        model::build_decode_workload(config, 1, contexts[0]);
    EXPECT_EQ(mixed.total_weight_bytes(), one.total_weight_bytes());
}

TEST(MixedWorkload, DegenerateBatchMatchesSingleDecode)
{
    const model::ModelConfig config = model::llama2_7b();
    const std::size_t contexts[] = {1024};
    const model::Workload mixed =
        model::build_mixed_decode_workload(config, contexts);
    const model::Workload single =
        model::build_decode_workload(config, 1, 1024);
    EXPECT_EQ(mixed.total_macs(), single.total_macs());
    EXPECT_EQ(mixed.total_weight_bytes(),
              single.total_weight_bytes());
    EXPECT_EQ(mixed.total_nonlinear_elements(),
              single.total_nonlinear_elements());
}

TEST(EngineStep, BatchedNumericsMatchIndependentSessions)
{
    // N sessions with different context lengths stepped as one batch
    // must produce bit-identical logits to N standalone
    // model::DecodeSession streams with the same kernels.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 1234);
    const Engine engine(sim::make_mugi(64), transformer);

    // Heterogeneous contexts: prompts of different lengths.
    const std::vector<std::size_t> prompt_lens = {3, 7, 11};
    std::vector<std::vector<int>> prompts;
    for (std::size_t i = 0; i < prompt_lens.size(); ++i) {
        prompts.push_back(model::synthetic_tokens(
            prompt_lens[i], config.vocab,
            static_cast<std::uint32_t>(100 + i)));
    }

    // Engine path: prefill then batched steps.
    std::vector<Session> sessions;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
        sessions.push_back(engine.create_session());
        engine.prefill(sessions.back(), prompts[i]);
    }
    // Reference path: independent DecodeSessions over a model with
    // the engine's default kernels installed.
    model::TransformerModel reference(config, 1234);
    reference.set_hooks(engine.default_hooks());
    std::vector<model::DecodeSession> independent;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
        independent.emplace_back(reference,
                                 quant::KvPrecision::kInt4);
        for (const int token : prompts[i]) {
            independent[i].step(token);
        }
    }

    std::vector<Session*> batch;
    for (Session& s : sessions) batch.push_back(&s);
    std::vector<int> tokens = {5, 17, 42};
    for (int step = 0; step < 4; ++step) {
        const StepResult result = engine.step(batch, tokens);
        ASSERT_EQ(result.outputs.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const std::vector<float> expected =
                independent[i].step(tokens[i]);
            ASSERT_EQ(result.outputs[i].logits.size(),
                      expected.size());
            for (std::size_t v = 0; v < expected.size(); ++v) {
                // Bit-identical: same code path, same kernels.
                EXPECT_EQ(result.outputs[i].logits[v], expected[v])
                    << "session " << i << " step " << step
                    << " vocab " << v;
            }
            EXPECT_EQ(result.outputs[i].position,
                      units::Positions(
                          prompt_lens[i] +
                          static_cast<std::size_t>(step) + 1));
            tokens[i] = result.outputs[i].next_token;
        }
    }
}

TEST(EngineStep, ReportAggregatesBatchedWorkload)
{
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);

    std::vector<Session> sessions;
    std::vector<Session*> batch;
    for (const std::size_t context : {255u, 1023u, 4095u}) {
        SessionOptions options;
        options.initial_context = units::Tokens(context);
        sessions.push_back(engine.create_session(options));
    }
    for (Session& s : sessions) batch.push_back(&s);

    const StepResult result = engine.step(batch);
    // One report for the whole step, all models populated.
    EXPECT_GT(result.report.perf.throughput_tokens_per_s, 0.0);
    EXPECT_GT(result.report.area.total(), 0.0);
    EXPECT_GT(result.report.carbon.total_g_per_token(), 0.0);
    EXPECT_GT(result.report.event_sim.makespan_cycles, 0.0);
    EXPECT_DOUBLE_EQ(result.report.perf.tokens, 3.0);
    // Positions advanced.
    EXPECT_EQ(sessions[0].position(), units::Positions(256));
    EXPECT_EQ(sessions[2].position(), units::Positions(4096));

    // Batched decode beats stepping the three requests one by one
    // (shared weight stream), at equal total tokens.
    sim::PerfAccumulator serial;
    for (const std::size_t context : {256u, 1024u, 4096u}) {
        serial.add(engine.evaluate_decode(config, 1, context).perf);
    }
    EXPECT_GT(result.report.perf.throughput_tokens_per_s,
              serial.total().throughput_tokens_per_s);
    EXPECT_DOUBLE_EQ(serial.total().tokens, 3.0);
}

TEST(EngineStep, EmptyBatchYieldsZeroedReportNotNaN)
{
    // A drained continuous batch must not poison accumulators with
    // 0/0 rates.
    const Engine engine(sim::make_mugi(256), model::llama2_7b());
    const StepResult result = engine.step(StepPlan{});
    EXPECT_TRUE(result.outputs.empty());
    EXPECT_EQ(result.report.perf.tokens, 0.0);
    EXPECT_EQ(result.report.perf.throughput_tokens_per_s, 0.0);

    sim::PerfAccumulator acc;
    acc.add(result.report.perf);
    Session session = engine.create_session();
    Session* batch[] = {&session};
    acc.add(engine.step(batch).report.perf);
    const sim::PerfReport total = acc.total();
    EXPECT_FALSE(std::isnan(total.throughput_tokens_per_s));
    EXPECT_GT(total.throughput_tokens_per_s, 0.0);
}

TEST(EngineStep, DuplicateSessionInBatchActsSequentially)
{
    // The scheduler never lists a session twice, but Engine::step
    // defines the behavior anyway: each occurrence is one sequential
    // step, so the duplicate batch must reproduce two back-to-back
    // single steps -- bit-identical logits and the same positions.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 2024);
    const Engine engine(sim::make_mugi(64), transformer);
    const std::vector<int> prompt =
        model::synthetic_tokens(4, config.vocab, 7);

    Session dup = engine.create_session();
    engine.prefill(dup, prompt);
    Session* batch[] = {&dup, &dup};
    const int tokens[] = {3, 9};
    const StepResult batched = engine.step(batch, tokens);

    Session seq = engine.create_session();
    engine.prefill(seq, prompt);
    const StepResult first = engine.step(seq, 3);
    const StepResult second = engine.step(seq, 9);

    ASSERT_EQ(batched.outputs.size(), 2u);
    EXPECT_EQ(batched.outputs[0].position, first.outputs[0].position);
    EXPECT_EQ(batched.outputs[1].position,
              second.outputs[0].position);
    EXPECT_EQ(dup.position(), seq.position());
    for (std::size_t v = 0; v < batched.outputs[0].logits.size();
         ++v) {
        EXPECT_EQ(batched.outputs[0].logits[v],
                  first.outputs[0].logits[v]);
        EXPECT_EQ(batched.outputs[1].logits[v],
                  second.outputs[0].logits[v]);
    }

    // The modeled workload charges the second occurrence one more
    // context position, exactly like the sequential pair.
    const std::size_t base = prompt.size();
    const std::size_t contexts[] = {base + 1, base + 2};
    const model::Workload expected =
        model::build_mixed_decode_workload(config, contexts);
    EXPECT_DOUBLE_EQ(
        batched.report.perf.tokens,
        static_cast<double>(expected.tokens()));
    EXPECT_DOUBLE_EQ(batched.report.perf.total_cycles,
                     sim::run_workload(engine.design(), expected)
                         .total_cycles);
}

TEST(EngineStep, AnalyticSessionStepsPastModelMaxSeqLen)
{
    // The analytic workload model has no hard context ceiling: a
    // session stepped past the model config's max_seq_len keeps
    // producing finite, growing-cost reports (the paged-KV roadmap
    // item will bound this; the scheduler bounds it with its budget).
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    SessionOptions options;
    options.initial_context = units::Tokens(config.max_seq_len - 1);
    Session session = engine.create_session(options);

    Session* batch[] = {&session};
    double last_cycles = 0.0;
    for (int i = 0; i < 3; ++i) {
        const StepResult result = engine.step(batch);
        EXPECT_FALSE(
            std::isnan(result.report.perf.throughput_tokens_per_s));
        EXPECT_GT(result.report.perf.total_cycles, last_cycles);
        last_cycles = result.report.perf.total_cycles;
    }
    EXPECT_EQ(session.position(),
              units::Positions(config.max_seq_len + 2));
}

TEST(EngineStep, PrefillChunksAreBitIdenticalToFullPrefill)
{
    // The chunked-prefill invariant the scheduler relies on: feeding
    // a prompt in chunks takes the same token-by-token path as one
    // prefill() call.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 5150);
    const Engine engine(sim::make_mugi(64), transformer);
    const std::vector<int> prompt =
        model::synthetic_tokens(11, config.vocab, 23);
    const std::span<const int> span(prompt);

    Session whole = engine.create_session();
    const std::vector<float> full = engine.prefill(whole, prompt);

    Session chunked = engine.create_session();
    engine.prefill_chunk(chunked, span.subspan(0, 4));
    engine.prefill_chunk(chunked, span.subspan(4, 4));
    const std::vector<float> last =
        engine.prefill_chunk(chunked, span.subspan(8));

    EXPECT_EQ(chunked.position(), whole.position());
    ASSERT_EQ(last.size(), full.size());
    for (std::size_t v = 0; v < full.size(); ++v) {
        EXPECT_EQ(last[v], full[v]);
    }
    // And the two sessions decode identically afterwards.
    const StepResult a = engine.step(whole, 13);
    const StepResult b = engine.step(chunked, 13);
    EXPECT_EQ(a.outputs[0].next_token, b.outputs[0].next_token);
}

TEST(EngineStep, FusedDecodeBitIdenticalToSequentialWithMixedKv)
{
    // The fused-step contract: stacking the batch's embeddings and
    // running one projection GEMM per layer must reproduce the
    // sequential per-session path bit for bit, across sessions with
    // different KV precisions, context lengths and per-layer window
    // tunings.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 555);
    const Engine engine(sim::make_mugi(64), transformer);

    const quant::KvPrecision precisions[] = {
        quant::KvPrecision::kFloat, quant::KvPrecision::kInt4,
        quant::KvPrecision::kFloat, quant::KvPrecision::kInt4};
    const std::size_t prompt_lens[] = {2, 5, 9, 3};

    const auto make_batch = [&] {
        std::vector<Session> sessions;
        for (std::size_t i = 0; i < 4; ++i) {
            SessionOptions options;
            options.kv_precision = precisions[i];
            sessions.push_back(engine.create_session(options));
            engine.prefill(sessions.back(),
                           model::synthetic_tokens(
                               prompt_lens[i], config.vocab,
                               static_cast<std::uint32_t>(70 + i)));
        }
        // A per-layer retune on one session must stay per-row.
        vlp::VlpConfig narrow = default_vlp_config(
            nonlinear::NonlinearOp::kExp,
            engine.design().array_rows);
        narrow.window_size = 4;
        const auto window = engine.kernels().get(narrow);
        model::NonlinearHooks hooks = engine.default_hooks();
        hooks.softmax_exp = window.get();
        sessions[1].set_layer_hooks(0, hooks);
        sessions[1].retain_kernel(window);
        return sessions;
    };

    std::vector<Session> fused_sessions = make_batch();
    std::vector<Session> seq_sessions = make_batch();
    std::vector<int> fused_tokens = {3, 11, 25, 40};
    std::vector<int> seq_tokens = fused_tokens;
    for (int step = 0; step < 3; ++step) {
        StepPlan fused_plan;
        fused_plan.fused_decode = true;
        StepPlan seq_plan;
        seq_plan.fused_decode = false;
        for (std::size_t i = 0; i < 4; ++i) {
            fused_plan.decode_sessions.push_back(&fused_sessions[i]);
            seq_plan.decode_sessions.push_back(&seq_sessions[i]);
        }
        fused_plan.decode_tokens = fused_tokens;
        seq_plan.decode_tokens = seq_tokens;
        const StepResult fused = engine.step(fused_plan);
        const StepResult seq = engine.step(seq_plan);
        ASSERT_EQ(fused.outputs.size(), seq.outputs.size());
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(fused.outputs[i].position,
                      seq.outputs[i].position);
            ASSERT_EQ(fused.outputs[i].logits.size(),
                      seq.outputs[i].logits.size());
            for (std::size_t v = 0; v < seq.outputs[i].logits.size();
                 ++v) {
                EXPECT_EQ(fused.outputs[i].logits[v],
                          seq.outputs[i].logits[v])
                    << "session " << i << " step " << step
                    << " vocab " << v;
            }
            fused_tokens[i] = fused.outputs[i].next_token;
            seq_tokens[i] = seq.outputs[i].next_token;
        }
        EXPECT_EQ(fused_tokens, seq_tokens) << "step " << step;
        // The fused charge amortizes column tiles across the batch:
        // strictly fewer cycles/sweeps for batch > array width
        // fraction, identical subscriptions (same MAC count).
        EXPECT_LT(fused.gemm.cycles, seq.gemm.cycles);
        EXPECT_LT(fused.gemm.sweeps, seq.gemm.sweeps);
        EXPECT_EQ(fused.gemm.subscriptions, seq.gemm.subscriptions);
        EXPECT_GT(fused.gemm.cycles, 0u);
    }
}

TEST(EngineStep, FusedBatchOfOneChargesLikeSequential)
{
    // A single-session batch has nothing to amortize: the fused and
    // sequential charges must agree exactly.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 77);
    const Engine engine(sim::make_mugi(64), transformer);
    Session a = engine.create_session();
    Session b = engine.create_session();
    engine.prefill(a, std::vector<int>{1, 2});
    engine.prefill(b, std::vector<int>{1, 2});

    StepPlan fused_plan;
    fused_plan.decode_sessions = {&a};
    fused_plan.decode_tokens = {5};
    StepPlan seq_plan = fused_plan;
    seq_plan.decode_sessions = {&b};
    seq_plan.fused_decode = false;
    const StepResult fused = engine.step(fused_plan);
    const StepResult seq = engine.step(seq_plan);
    ASSERT_EQ(fused.outputs[0].logits.size(),
              seq.outputs[0].logits.size());
    for (std::size_t v = 0; v < seq.outputs[0].logits.size(); ++v) {
        EXPECT_EQ(fused.outputs[0].logits[v],
                  seq.outputs[0].logits[v]);
    }
    EXPECT_EQ(fused.gemm.cycles, seq.gemm.cycles);
    EXPECT_EQ(fused.gemm.sweeps, seq.gemm.sweeps);
    EXPECT_EQ(fused.gemm.subscriptions, seq.gemm.subscriptions);
}

TEST(EngineStep, FusedDecodeTracksPostConstructionWeightMutation)
{
    // examples/llm_inference applies WOQ to the transformer *after*
    // constructing the Engine.  The fused path must read the live
    // weights (no load-time snapshot), so both paths see the
    // mutation and stay bit-identical.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 2024);
    const Engine engine(sim::make_mugi(64), transformer);
    Session fused_s = engine.create_session();
    Session seq_s = engine.create_session();
    const std::vector<int> prompt =
        model::synthetic_tokens(4, config.vocab, 7);
    engine.prefill(fused_s, prompt);
    engine.prefill(seq_s, prompt);

    transformer->apply_woq(32);  // INT4 weights from here on.

    StepPlan fused_plan;
    fused_plan.decode_sessions = {&fused_s};
    fused_plan.decode_tokens = {9};
    StepPlan seq_plan = fused_plan;
    seq_plan.decode_sessions = {&seq_s};
    seq_plan.fused_decode = false;
    const StepResult fused = engine.step(fused_plan);
    const StepResult seq = engine.step(seq_plan);
    ASSERT_EQ(fused.outputs[0].logits.size(),
              seq.outputs[0].logits.size());
    for (std::size_t v = 0; v < seq.outputs[0].logits.size(); ++v) {
        EXPECT_EQ(fused.outputs[0].logits[v],
                  seq.outputs[0].logits[v])
            << v;
    }
}

TEST(EngineStep, AnalyticStepsChargeNoFunctionalGemm)
{
    const Engine engine(sim::make_mugi(256), model::llama2_7b());
    Session session = engine.create_session();
    Session* batch[] = {&session};
    const StepResult result = engine.step(batch);
    EXPECT_EQ(result.gemm.cycles, 0u);
    EXPECT_EQ(result.gemm.subscriptions, 0u);
}

TEST(EngineSession, SessionOutlivesEngine)
{
    // Sessions retain their default kernels: using one after its
    // engine is gone must not touch freed registry state.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 55);
    auto engine = std::make_unique<Engine>(sim::make_mugi(64),
                                           transformer);
    Session session = engine->create_session();
    const Engine replacement(sim::make_mugi(64), transformer);
    engine.reset();  // Original registry destroyed.
    const StepResult result = replacement.step(session, 9);
    EXPECT_FALSE(result.outputs[0].logits.empty());
}

TEST(EngineStep, ConcurrentDisjointBatchesAreSafe)
{
    // The engine is immutable: disjoint session sets may step
    // concurrently through one shared instance.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 99);
    const Engine engine(sim::make_mugi(64), transformer);

    constexpr int kThreads = 4;
    constexpr int kSteps = 8;
    std::vector<std::vector<float>> last_logits(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Session session = engine.create_session();
            int token = 7;  // Same stream in every thread.
            for (int s = 0; s < kSteps; ++s) {
                const StepResult result = engine.step(session, token);
                token = result.outputs[0].next_token;
                last_logits[t] = result.outputs[0].logits;
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    // Identical inputs through shared kernels: identical outputs.
    for (int t = 1; t < kThreads; ++t) {
        ASSERT_EQ(last_logits[t].size(), last_logits[0].size());
        for (std::size_t v = 0; v < last_logits[0].size(); ++v) {
            EXPECT_EQ(last_logits[t][v], last_logits[0][v]);
        }
    }
}

TEST(EngineSession, PerLayerWindowTuningIsPerSession)
{
    // Two concurrent sessions, one with a deliberately bad softmax
    // window on layer 0: outputs must differ from the default
    // session while the default matches an untuned reference.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 4321);
    const Engine engine(sim::make_mugi(64), transformer);

    Session tuned = engine.create_session();
    Session plain = engine.create_session();

    vlp::VlpConfig bad = default_vlp_config(
        nonlinear::NonlinearOp::kExp, engine.design().array_rows);
    bad.lut_max_exp = -8;  // Far below the profiled band.
    bad.lut_min_exp = -15;
    const auto bad_kernel = engine.kernels().get(bad);
    model::NonlinearHooks bad_hooks = engine.default_hooks();
    bad_hooks.softmax_exp = bad_kernel.get();
    tuned.set_layer_hooks(0, bad_hooks);
    tuned.retain_kernel(bad_kernel);

    // Build context first: the window only matters once softmax rows
    // span multiple cached positions.
    const std::vector<int> prompt =
        model::synthetic_tokens(5, config.vocab, 17);
    engine.prefill(tuned, prompt);
    engine.prefill(plain, prompt);

    Session* batch[] = {&tuned, &plain};
    const int tokens[] = {3, 3};
    const StepResult result = engine.step(batch, tokens);

    model::TransformerModel reference(config, 4321);
    reference.set_hooks(engine.default_hooks());
    model::DecodeSession ref_session(reference,
                                     quant::KvPrecision::kInt4);
    for (const int token : prompt) {
        ref_session.step(token);
    }
    const std::vector<float> expected = ref_session.step(3);

    bool differs = false;
    for (std::size_t v = 0; v < expected.size(); ++v) {
        EXPECT_EQ(result.outputs[1].logits[v], expected[v]);
        differs |= result.outputs[0].logits[v] != expected[v];
    }
    EXPECT_TRUE(differs)
        << "bad layer-0 window must perturb the tuned session";
}

}  // namespace
}  // namespace serve
}  // namespace mugi
