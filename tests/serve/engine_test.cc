/**
 * @file
 * The acceptance contract of the serving API: a batched Engine::step
 * over N heterogeneous sessions must reproduce N independent
 * single-request decodes -- bit-identical functional numerics and
 * exactly-preserved op counts -- while sharing the per-step weight
 * stream.
 */

#include "serve/engine.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"

namespace mugi {
namespace serve {
namespace {

TEST(MixedWorkload, OpCountsMatchIndependentDecodes)
{
    const model::ModelConfig config = model::llama2_70b();
    const std::vector<std::size_t> contexts = {128, 512, 2048, 4096};
    const model::Workload mixed =
        model::build_mixed_decode_workload(config, contexts);

    std::uint64_t macs = 0, nonlinear = 0;
    for (const std::size_t c : contexts) {
        const model::Workload single =
            model::build_decode_workload(config, 1, c);
        macs += single.total_macs();
        nonlinear += single.total_nonlinear_elements();
    }
    // Compute is preserved exactly across the batching.
    EXPECT_EQ(mixed.total_macs(), macs);
    EXPECT_EQ(mixed.total_nonlinear_elements(), nonlinear);
    EXPECT_EQ(mixed.tokens(), contexts.size());

    // Weight traffic is shared: the batch streams the WOQ weights
    // once, an independent decode streams them per request.
    const model::Workload one =
        model::build_decode_workload(config, 1, contexts[0]);
    EXPECT_EQ(mixed.total_weight_bytes(), one.total_weight_bytes());
}

TEST(MixedWorkload, DegenerateBatchMatchesSingleDecode)
{
    const model::ModelConfig config = model::llama2_7b();
    const std::size_t contexts[] = {1024};
    const model::Workload mixed =
        model::build_mixed_decode_workload(config, contexts);
    const model::Workload single =
        model::build_decode_workload(config, 1, 1024);
    EXPECT_EQ(mixed.total_macs(), single.total_macs());
    EXPECT_EQ(mixed.total_weight_bytes(),
              single.total_weight_bytes());
    EXPECT_EQ(mixed.total_nonlinear_elements(),
              single.total_nonlinear_elements());
}

TEST(EngineStep, BatchedNumericsMatchIndependentSessions)
{
    // N sessions with different context lengths stepped as one batch
    // must produce bit-identical logits to N standalone
    // model::DecodeSession streams with the same kernels.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 1234);
    const Engine engine(sim::make_mugi(64), transformer);

    // Heterogeneous contexts: prompts of different lengths.
    const std::vector<std::size_t> prompt_lens = {3, 7, 11};
    std::vector<std::vector<int>> prompts;
    for (std::size_t i = 0; i < prompt_lens.size(); ++i) {
        prompts.push_back(model::synthetic_tokens(
            prompt_lens[i], config.vocab,
            static_cast<std::uint32_t>(100 + i)));
    }

    // Engine path: prefill then batched steps.
    std::vector<Session> sessions;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
        sessions.push_back(engine.create_session());
        engine.prefill(sessions.back(), prompts[i]);
    }
    // Reference path: independent DecodeSessions over a model with
    // the engine's default kernels installed.
    model::TransformerModel reference(config, 1234);
    reference.set_hooks(engine.default_hooks());
    std::vector<model::DecodeSession> independent;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
        independent.emplace_back(reference,
                                 quant::KvPrecision::kInt4);
        for (const int token : prompts[i]) {
            independent[i].step(token);
        }
    }

    std::vector<Session*> batch;
    for (Session& s : sessions) batch.push_back(&s);
    std::vector<int> tokens = {5, 17, 42};
    for (int step = 0; step < 4; ++step) {
        const StepResult result = engine.step(batch, tokens);
        ASSERT_EQ(result.outputs.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const std::vector<float> expected =
                independent[i].step(tokens[i]);
            ASSERT_EQ(result.outputs[i].logits.size(),
                      expected.size());
            for (std::size_t v = 0; v < expected.size(); ++v) {
                // Bit-identical: same code path, same kernels.
                EXPECT_EQ(result.outputs[i].logits[v], expected[v])
                    << "session " << i << " step " << step
                    << " vocab " << v;
            }
            EXPECT_EQ(result.outputs[i].position,
                      prompt_lens[i] + static_cast<std::size_t>(step) +
                          1);
            tokens[i] = result.outputs[i].next_token;
        }
    }
}

TEST(EngineStep, ReportAggregatesBatchedWorkload)
{
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);

    std::vector<Session> sessions;
    std::vector<Session*> batch;
    for (const std::size_t context : {255u, 1023u, 4095u}) {
        SessionOptions options;
        options.initial_context = context;
        sessions.push_back(engine.create_session(options));
    }
    for (Session& s : sessions) batch.push_back(&s);

    const StepResult result = engine.step(batch);
    // One report for the whole step, all models populated.
    EXPECT_GT(result.report.perf.throughput_tokens_per_s, 0.0);
    EXPECT_GT(result.report.area.total(), 0.0);
    EXPECT_GT(result.report.carbon.total_g_per_token(), 0.0);
    EXPECT_GT(result.report.event_sim.makespan_cycles, 0.0);
    EXPECT_DOUBLE_EQ(result.report.perf.tokens, 3.0);
    // Positions advanced.
    EXPECT_EQ(sessions[0].position(), 256u);
    EXPECT_EQ(sessions[2].position(), 4096u);

    // Batched decode beats stepping the three requests one by one
    // (shared weight stream), at equal total tokens.
    sim::PerfAccumulator serial;
    for (const std::size_t context : {256u, 1024u, 4096u}) {
        serial.add(engine.evaluate_decode(config, 1, context).perf);
    }
    EXPECT_GT(result.report.perf.throughput_tokens_per_s,
              serial.total().throughput_tokens_per_s);
    EXPECT_DOUBLE_EQ(serial.total().tokens, 3.0);
}

TEST(EngineStep, EmptyBatchYieldsZeroedReportNotNaN)
{
    // A drained continuous batch must not poison accumulators with
    // 0/0 rates.
    const Engine engine(sim::make_mugi(256), model::llama2_7b());
    const StepResult result = engine.step(StepPlan{});
    EXPECT_TRUE(result.outputs.empty());
    EXPECT_EQ(result.report.perf.tokens, 0.0);
    EXPECT_EQ(result.report.perf.throughput_tokens_per_s, 0.0);

    sim::PerfAccumulator acc;
    acc.add(result.report.perf);
    Session session = engine.create_session();
    Session* batch[] = {&session};
    acc.add(engine.step(batch).report.perf);
    const sim::PerfReport total = acc.total();
    EXPECT_FALSE(std::isnan(total.throughput_tokens_per_s));
    EXPECT_GT(total.throughput_tokens_per_s, 0.0);
}

TEST(EngineStep, DuplicateSessionInBatchActsSequentially)
{
    // The scheduler never lists a session twice, but Engine::step
    // defines the behavior anyway: each occurrence is one sequential
    // step, so the duplicate batch must reproduce two back-to-back
    // single steps -- bit-identical logits and the same positions.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 2024);
    const Engine engine(sim::make_mugi(64), transformer);
    const std::vector<int> prompt =
        model::synthetic_tokens(4, config.vocab, 7);

    Session dup = engine.create_session();
    engine.prefill(dup, prompt);
    Session* batch[] = {&dup, &dup};
    const int tokens[] = {3, 9};
    const StepResult batched = engine.step(batch, tokens);

    Session seq = engine.create_session();
    engine.prefill(seq, prompt);
    const StepResult first = engine.step(seq, 3);
    const StepResult second = engine.step(seq, 9);

    ASSERT_EQ(batched.outputs.size(), 2u);
    EXPECT_EQ(batched.outputs[0].position, first.outputs[0].position);
    EXPECT_EQ(batched.outputs[1].position,
              second.outputs[0].position);
    EXPECT_EQ(dup.position(), seq.position());
    for (std::size_t v = 0; v < batched.outputs[0].logits.size();
         ++v) {
        EXPECT_EQ(batched.outputs[0].logits[v],
                  first.outputs[0].logits[v]);
        EXPECT_EQ(batched.outputs[1].logits[v],
                  second.outputs[0].logits[v]);
    }

    // The modeled workload charges the second occurrence one more
    // context position, exactly like the sequential pair.
    const std::size_t base = prompt.size();
    const std::size_t contexts[] = {base + 1, base + 2};
    const model::Workload expected =
        model::build_mixed_decode_workload(config, contexts);
    EXPECT_DOUBLE_EQ(
        batched.report.perf.tokens,
        static_cast<double>(expected.tokens()));
    EXPECT_DOUBLE_EQ(batched.report.perf.total_cycles,
                     sim::run_workload(engine.design(), expected)
                         .total_cycles);
}

TEST(EngineStep, AnalyticSessionStepsPastModelMaxSeqLen)
{
    // The analytic workload model has no hard context ceiling: a
    // session stepped past the model config's max_seq_len keeps
    // producing finite, growing-cost reports (the paged-KV roadmap
    // item will bound this; the scheduler bounds it with its budget).
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    SessionOptions options;
    options.initial_context = config.max_seq_len - 1;
    Session session = engine.create_session(options);

    Session* batch[] = {&session};
    double last_cycles = 0.0;
    for (int i = 0; i < 3; ++i) {
        const StepResult result = engine.step(batch);
        EXPECT_FALSE(
            std::isnan(result.report.perf.throughput_tokens_per_s));
        EXPECT_GT(result.report.perf.total_cycles, last_cycles);
        last_cycles = result.report.perf.total_cycles;
    }
    EXPECT_EQ(session.position(), config.max_seq_len + 2);
}

TEST(EngineStep, PrefillChunksAreBitIdenticalToFullPrefill)
{
    // The chunked-prefill invariant the scheduler relies on: feeding
    // a prompt in chunks takes the same token-by-token path as one
    // prefill() call.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 5150);
    const Engine engine(sim::make_mugi(64), transformer);
    const std::vector<int> prompt =
        model::synthetic_tokens(11, config.vocab, 23);
    const std::span<const int> span(prompt);

    Session whole = engine.create_session();
    const std::vector<float> full = engine.prefill(whole, prompt);

    Session chunked = engine.create_session();
    engine.prefill_chunk(chunked, span.subspan(0, 4));
    engine.prefill_chunk(chunked, span.subspan(4, 4));
    const std::vector<float> last =
        engine.prefill_chunk(chunked, span.subspan(8));

    EXPECT_EQ(chunked.position(), whole.position());
    ASSERT_EQ(last.size(), full.size());
    for (std::size_t v = 0; v < full.size(); ++v) {
        EXPECT_EQ(last[v], full[v]);
    }
    // And the two sessions decode identically afterwards.
    const StepResult a = engine.step(whole, 13);
    const StepResult b = engine.step(chunked, 13);
    EXPECT_EQ(a.outputs[0].next_token, b.outputs[0].next_token);
}

TEST(EngineSession, SessionOutlivesEngine)
{
    // Sessions retain their default kernels: using one after its
    // engine is gone must not touch freed registry state.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 55);
    auto engine = std::make_unique<Engine>(sim::make_mugi(64),
                                           transformer);
    Session session = engine->create_session();
    const Engine replacement(sim::make_mugi(64), transformer);
    engine.reset();  // Original registry destroyed.
    const StepResult result = replacement.step(session, 9);
    EXPECT_FALSE(result.outputs[0].logits.empty());
}

TEST(EngineStep, ConcurrentDisjointBatchesAreSafe)
{
    // The engine is immutable: disjoint session sets may step
    // concurrently through one shared instance.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 99);
    const Engine engine(sim::make_mugi(64), transformer);

    constexpr int kThreads = 4;
    constexpr int kSteps = 8;
    std::vector<std::vector<float>> last_logits(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Session session = engine.create_session();
            int token = 7;  // Same stream in every thread.
            for (int s = 0; s < kSteps; ++s) {
                const StepResult result = engine.step(session, token);
                token = result.outputs[0].next_token;
                last_logits[t] = result.outputs[0].logits;
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    // Identical inputs through shared kernels: identical outputs.
    for (int t = 1; t < kThreads; ++t) {
        ASSERT_EQ(last_logits[t].size(), last_logits[0].size());
        for (std::size_t v = 0; v < last_logits[0].size(); ++v) {
            EXPECT_EQ(last_logits[t][v], last_logits[0][v]);
        }
    }
}

TEST(EngineSession, PerLayerWindowTuningIsPerSession)
{
    // Two concurrent sessions, one with a deliberately bad softmax
    // window on layer 0: outputs must differ from the default
    // session while the default matches an untuned reference.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 4321);
    const Engine engine(sim::make_mugi(64), transformer);

    Session tuned = engine.create_session();
    Session plain = engine.create_session();

    vlp::VlpConfig bad = default_vlp_config(
        nonlinear::NonlinearOp::kExp, engine.design().array_rows);
    bad.lut_max_exp = -8;  // Far below the profiled band.
    bad.lut_min_exp = -15;
    const auto bad_kernel = engine.kernels().get(bad);
    model::NonlinearHooks bad_hooks = engine.default_hooks();
    bad_hooks.softmax_exp = bad_kernel.get();
    tuned.set_layer_hooks(0, bad_hooks);
    tuned.retain_kernel(bad_kernel);

    // Build context first: the window only matters once softmax rows
    // span multiple cached positions.
    const std::vector<int> prompt =
        model::synthetic_tokens(5, config.vocab, 17);
    engine.prefill(tuned, prompt);
    engine.prefill(plain, prompt);

    Session* batch[] = {&tuned, &plain};
    const int tokens[] = {3, 3};
    const StepResult result = engine.step(batch, tokens);

    model::TransformerModel reference(config, 4321);
    reference.set_hooks(engine.default_hooks());
    model::DecodeSession ref_session(reference,
                                     quant::KvPrecision::kInt4);
    for (const int token : prompt) {
        ref_session.step(token);
    }
    const std::vector<float> expected = ref_session.step(3);

    bool differs = false;
    for (std::size_t v = 0; v < expected.size(); ++v) {
        EXPECT_EQ(result.outputs[1].logits[v], expected[v]);
        differs |= result.outputs[0].logits[v] != expected[v];
    }
    EXPECT_TRUE(differs)
        << "bad layer-0 window must perturb the tuned session";
}

}  // namespace
}  // namespace serve
}  // namespace mugi
