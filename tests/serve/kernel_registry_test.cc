#include "serve/kernel_registry.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mugi {
namespace serve {
namespace {

TEST(KernelRegistry, SameConfigReturnsSameInstance)
{
    const KernelRegistry registry(256);
    const auto a = registry.get_default(nonlinear::NonlinearOp::kExp);
    const auto b = registry.get_default(nonlinear::NonlinearOp::kExp);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(registry.size(), 1u);

    const auto c = registry.get_default(nonlinear::NonlinearOp::kSilu);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(registry.size(), 2u);
}

TEST(KernelRegistry, DistinctConfigsGetDistinctKernels)
{
    const KernelRegistry registry(128);
    vlp::VlpConfig config =
        default_vlp_config(nonlinear::NonlinearOp::kExp, 128);
    const auto base = registry.get(config);
    config.lut_max_exp += 1;
    const auto shifted = registry.get(config);
    EXPECT_NE(base.get(), shifted.get());
    EXPECT_EQ(registry.size(), 2u);
    // The kernels really carry their configs.
    EXPECT_EQ(base->config().lut_max_exp + 1,
              shifted->config().lut_max_exp);
}

TEST(KernelRegistry, DefaultConfigsMatchPaperWindows)
{
    // Softmax exp: profiled [-3, 4] band; SiLU/GELU: [-6, 1].
    const vlp::VlpConfig exp_cfg =
        default_vlp_config(nonlinear::NonlinearOp::kExp, 256);
    EXPECT_EQ(exp_cfg.lut_min_exp, -3);
    EXPECT_EQ(exp_cfg.lut_max_exp, 4);
    EXPECT_EQ(exp_cfg.mapping_rows, 256u);
    const vlp::VlpConfig silu_cfg =
        default_vlp_config(nonlinear::NonlinearOp::kSilu, 256);
    EXPECT_EQ(silu_cfg.lut_min_exp, -6);
    EXPECT_EQ(silu_cfg.lut_max_exp, 1);
}

TEST(KernelRegistry, ConcurrentGetBuildsOnce)
{
    const KernelRegistry registry(256);
    constexpr int kThreads = 8;
    std::vector<const vlp::VlpApproximator*> seen(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            seen[t] =
                registry.get_default(nonlinear::NonlinearOp::kGelu)
                    .get();
        });
    }
    for (std::thread& thread : threads) thread.join();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(seen[t], seen[0]);
    }
    EXPECT_EQ(registry.size(), 1u);
}

TEST(KernelRegistry, SharedKernelIsConstThreadSafe)
{
    // The guarantee documented in vlp/vlp_approximator.h: one kernel,
    // many threads, no synchronization, identical results.
    const KernelRegistry registry(128);
    const auto kernel =
        registry.get_default(nonlinear::NonlinearOp::kExp);

    std::vector<float> inputs;
    for (float x = -8.0f; x <= 0.0f; x += 0.03125f) {
        inputs.push_back(x);
    }
    std::vector<float> expected(inputs.size());
    kernel->apply_batch(inputs, expected);

    constexpr int kThreads = 8;
    std::vector<std::vector<float>> outs(
        kThreads, std::vector<float>(inputs.size()));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back(
            [&, t] { kernel->apply_batch(inputs, outs[t]); });
    }
    for (std::thread& thread : threads) thread.join();
    for (int t = 0; t < kThreads; ++t) {
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            EXPECT_EQ(outs[t][i], expected[i]);
        }
    }
}

}  // namespace
}  // namespace serve
}  // namespace mugi
