/**
 * @file
 * Overload-protection contract: the bounded admission queue sheds
 * by policy (newest, or lowest priority with ties toward newest),
 * admission timeouts bound the arrival -> admission window on the
 * modeled clock, and the threaded serve::Server resolves every
 * handle -- shed or served -- leaving zero KV bytes and clean
 * invariants.  The channel.push fault site is exercised end to end:
 * an injected submission failure surfaces as FinishReason::kShed on
 * a handle that still resolves.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "support/fault.h"

namespace mugi {
namespace serve {
namespace {

/** Analytic request: @p prompt tokens, @p gen generated tokens. */
Request
analytic_request(std::size_t prompt, std::size_t gen)
{
    Request request;
    request.analytic_prompt_tokens = units::Tokens(prompt);
    request.max_new_tokens = units::Tokens(gen);
    return request;
}

/**
 * analytic_request() arriving an instant after t=0, so the blocker
 * (arrival 0) is admitted before the capacity sweep ever sees these
 * -- the shed/timeout candidates are exactly the late arrivals.
 */
Request
late_request(std::size_t prompt, std::size_t gen)
{
    Request request = analytic_request(prompt, gen);
    request.arrival_time_s = 1e-12;
    return request;
}

/** One-slot-batch scheduler: queued work stays queued while the
 *  blocker decodes, so shed/timeout sweeps see stable candidates. */
SchedulerConfig
one_slot_config()
{
    SchedulerConfig config;
    config.max_batch = 1;
    config.prefill_chunk_tokens = units::Tokens(256);
    return config;
}

TEST(SchedulerOverload, BoundedQueueShedsTheNewestArrival)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    SchedulerConfig config = one_slot_config();
    config.max_queued_requests = 2;
    Scheduler scheduler(engine, config);

    // A long blocker owns the single batch slot; three more arrive
    // behind it -- one over the bound, so exactly one must shed.
    scheduler.submit(analytic_request(256, 40));
    std::vector<std::uint64_t> queued_ids;
    for (int i = 0; i < 3; ++i) {
        queued_ids.push_back(
            scheduler.submit(late_request(128, 4)));
    }
    const std::vector<FinishedRequest> finished = scheduler.run();

    ASSERT_EQ(finished.size(), 4u);
    std::vector<std::uint64_t> shed_ids;
    for (const FinishedRequest& f : finished) {
        if (f.reason == FinishReason::kShed) {
            shed_ids.push_back(f.id);
            EXPECT_EQ(f.generated, units::Tokens(0));
        }
    }
    // kRejectNewest: the victim is the last submission, not an
    // earlier arrival that was already waiting.
    ASSERT_EQ(shed_ids.size(), 1u);
    EXPECT_EQ(shed_ids[0], queued_ids.back());
    const ServerStats stats = scheduler.stats();
    EXPECT_EQ(stats.requests_shed, 1u);
    EXPECT_EQ(stats.kv_bytes_in_use, units::Bytes(0));
    EXPECT_EQ(scheduler.check_invariants(), "");
}

TEST(SchedulerOverload, RejectLowestPriorityPicksTheMinPriority)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    SchedulerConfig config = one_slot_config();
    config.max_queued_requests = 2;
    config.shed_policy = ShedPolicy::kRejectLowestPriority;
    Scheduler scheduler(engine, config);

    scheduler.submit(analytic_request(256, 40));  // Blocker.
    Request first = late_request(128, 4);
    first.priority = 5;
    scheduler.submit(std::move(first));
    Request victim = late_request(128, 4);
    victim.priority = -3;
    const std::uint64_t victim_id =
        scheduler.submit(std::move(victim));
    Request last = late_request(128, 4);
    last.priority = 0;  // Newest, but NOT the lowest priority.
    scheduler.submit(std::move(last));

    const std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 4u);
    for (const FinishedRequest& f : finished) {
        if (f.reason == FinishReason::kShed) {
            EXPECT_EQ(f.id, victim_id);
        } else {
            EXPECT_NE(f.id, victim_id);
        }
    }
    EXPECT_EQ(scheduler.stats().requests_shed, 1u);
}

TEST(SchedulerOverload, RejectLowestPriorityBreaksTiesTowardNewest)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    SchedulerConfig config = one_slot_config();
    config.max_queued_requests = 2;
    config.shed_policy = ShedPolicy::kRejectLowestPriority;
    Scheduler scheduler(engine, config);

    scheduler.submit(analytic_request(256, 40));  // Blocker.
    Request older = late_request(128, 4);
    older.priority = -3;
    const std::uint64_t older_id =
        scheduler.submit(std::move(older));
    scheduler.submit(late_request(128, 4));  // priority 0.
    Request newer = late_request(128, 4);
    newer.priority = -3;  // Same minimum, arrived later.
    const std::uint64_t newer_id =
        scheduler.submit(std::move(newer));

    for (const FinishedRequest& f : scheduler.run()) {
        if (f.reason == FinishReason::kShed) {
            EXPECT_EQ(f.id, newer_id);
            EXPECT_NE(f.id, older_id);
        }
    }
    EXPECT_EQ(scheduler.stats().requests_shed, 1u);
}

TEST(SchedulerOverload, AdmissionTimeoutRetiresStaleQueuers)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    SchedulerConfig config = one_slot_config();
    // The blocker's modeled decode takes far longer than this, so
    // the queued request exceeds its admission window mid-decode.
    config.admission_timeout_s = 1.0;
    Scheduler scheduler(engine, config);

    const std::uint64_t blocker_id =
        scheduler.submit(analytic_request(256, 40));
    const std::uint64_t waiter_id =
        scheduler.submit(late_request(128, 4));

    for (const FinishedRequest& f : scheduler.run()) {
        if (f.id == waiter_id) {
            EXPECT_EQ(f.reason, FinishReason::kAdmissionTimeout);
            EXPECT_EQ(f.generated, units::Tokens(0));
        } else {
            EXPECT_EQ(f.id, blocker_id);
            EXPECT_EQ(f.reason, FinishReason::kMaxTokens);
        }
    }
    const ServerStats stats = scheduler.stats();
    EXPECT_EQ(stats.admission_timeouts, 1u);
    EXPECT_EQ(stats.requests_shed, 0u);
    EXPECT_EQ(stats.kv_bytes_in_use, units::Bytes(0));
}

TEST(SchedulerOverload, RequestTimeoutOverridesTheConfigDefault)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    SchedulerConfig config = one_slot_config();
    config.admission_timeout_s = 0.0;  // No default limit.
    Scheduler scheduler(engine, config);

    scheduler.submit(analytic_request(256, 40));  // Blocker.
    Request impatient = late_request(128, 4);
    impatient.admission_timeout_s = 1.0;
    const std::uint64_t impatient_id =
        scheduler.submit(std::move(impatient));
    const std::uint64_t patient_id =
        scheduler.submit(late_request(128, 4));

    for (const FinishedRequest& f : scheduler.run()) {
        if (f.id == impatient_id) {
            EXPECT_EQ(f.reason, FinishReason::kAdmissionTimeout);
        } else if (f.id == patient_id) {
            // No per-request limit and no config default: it waits
            // out the blocker and completes.
            EXPECT_EQ(f.reason, FinishReason::kMaxTokens);
        }
    }
    EXPECT_EQ(scheduler.stats().admission_timeouts, 1u);
}

TEST(ServerOverload, BoundedQueueResolvesEveryHandle)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    ServerConfig config;
    config.scheduler = one_slot_config();
    config.scheduler.max_queued_requests = 1;
    Server server(engine, config);

    std::vector<RequestHandle> handles;
    handles.push_back(server.submit(analytic_request(256, 40)));
    for (int i = 0; i < 4; ++i) {
        handles.push_back(server.submit(analytic_request(128, 4)));
    }

    std::size_t served = 0;
    std::size_t shed = 0;
    for (RequestHandle& handle : handles) {
        const FinishedRequest f = handle.wait();
        if (f.reason == FinishReason::kShed) {
            ++shed;
        } else {
            EXPECT_EQ(f.reason, FinishReason::kMaxTokens);
            ++served;
        }
    }
    server.shutdown(ShutdownMode::kDrain);

    EXPECT_EQ(served + shed, 5u);
    EXPECT_GE(shed, 1u);  // One queue slot cannot hold four waiters.
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests_shed, shed);
    EXPECT_EQ(stats.kv_bytes_in_use, units::Bytes(0));
    // Post-shutdown the loop thread is joined: the deep audit runs.
    EXPECT_EQ(server.check_invariants(), "");
}

TEST(ServerOverload, ChannelPushFaultShedsTheSubmission)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    Server server(engine, ServerConfig{});

    {
        support::FaultPlan plan;
        plan.seed = 41;
        plan.sites = {{"channel.push", 1.0, 1}};
        support::ScopedFaultPlan armed(plan);

        RequestHandle handle =
            server.submit(analytic_request(64, 4));
        const FinishedRequest f = handle.wait();
        EXPECT_EQ(f.reason, FinishReason::kShed);
        EXPECT_EQ(f.generated, units::Tokens(0));
        const ServerStats stats = server.stats();
        EXPECT_GE(stats.requests_shed, 1u);
        EXPECT_GE(stats.faults_injected, 1u);
    }

    // Disarmed: the next submission serves normally.
    RequestHandle handle = server.submit(analytic_request(64, 4));
    EXPECT_EQ(handle.wait().reason, FinishReason::kMaxTokens);
    server.shutdown(ShutdownMode::kDrain);
    EXPECT_EQ(server.stats().kv_bytes_in_use, units::Bytes(0));
    EXPECT_EQ(server.check_invariants(), "");
}

}  // namespace
}  // namespace serve
}  // namespace mugi
