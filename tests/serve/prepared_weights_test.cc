/**
 * @file
 * Regression tests for the quantize-once serving path: a reused
 * PreparedWeights handle must give bit-identical outputs to the
 * one-shot quantize-and-run path the old facade used per call.
 */

#include "serve/prepared_weights.h"

#include <random>

#include <gtest/gtest.h>

#include "serve/engine.h"
#include "support/rng.h"

namespace mugi {
namespace serve {
namespace {

TEST(PreparedWeights, ReusedHandleIsBitIdenticalToOneShot)
{
    const Engine engine(sim::make_mugi(64));
    std::mt19937 rng(313);
    support::MatrixF weights(48, 96);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);

    const PreparedWeights prepared =
        engine.prepare_weights(weights, 32);
    for (int trial = 0; trial < 3; ++trial) {
        support::MatrixF acts(96, 8);
        support::fill_gaussian(acts, rng, 0.0f, 1.0f);
        const GemmRun reused = engine.run_woq_gemm(prepared, acts);
        const GemmRun one_shot = engine.run_woq_gemm(weights, acts, 32);
        ASSERT_EQ(reused.out.rows(), one_shot.out.rows());
        ASSERT_EQ(reused.out.cols(), one_shot.out.cols());
        for (std::size_t i = 0; i < reused.out.size(); ++i) {
            EXPECT_EQ(reused.out.data()[i], one_shot.out.data()[i])
                << "trial " << trial << " element " << i;
        }
        EXPECT_EQ(reused.cycles, one_shot.cycles);
    }
}

TEST(PreparedWeights, QuantizesExactlyOnce)
{
    // The handle shares one immutable quantization: copies alias the
    // same storage instead of re-quantizing.
    const Engine engine(sim::make_mugi(32));
    std::mt19937 rng(77);
    support::MatrixF weights(16, 32);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);

    const PreparedWeights a = engine.prepare_weights(weights, 16);
    const PreparedWeights b = a;  // Handle copy, not a re-quantize.
    EXPECT_EQ(&a.quantized(), &b.quantized());
    EXPECT_EQ(a.group_size(), 16u);
    EXPECT_EQ(a.rows(), 16u);
    EXPECT_EQ(a.cols(), 32u);
    // INT4 + per-group BF16 scales: ~4x smaller than float storage.
    EXPECT_LT(a.byte_size(), weights.size() * sizeof(float) / 3);
}

TEST(PreparedWeights, AgreesWithDequantizedReference)
{
    const Engine engine(sim::make_mugi(32));
    std::mt19937 rng(511);
    support::MatrixF weights(24, 64);
    support::MatrixF acts(64, 8);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);
    support::fill_gaussian(acts, rng, 0.0f, 1.0f);

    const PreparedWeights prepared =
        engine.prepare_weights(weights, 16);
    const GemmRun run = engine.run_woq_gemm(prepared, acts);
    const support::MatrixF deq = quant::dequantize(prepared.quantized());
    const support::MatrixF expected = support::matmul(deq, acts);
    for (std::size_t r = 0; r < expected.rows(); ++r) {
        for (std::size_t c = 0; c < expected.cols(); ++c) {
            EXPECT_NEAR(run.out.at(r, c), expected.at(r, c), 2e-3);
        }
    }
}

}  // namespace
}  // namespace serve
}  // namespace mugi
