/**
 * @file
 * Regression tests for the quantize-once serving path: a reused
 * PreparedWeights handle must give bit-identical outputs to the
 * one-shot quantize-and-run path the old facade used per call.
 */

#include "serve/prepared_weights.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "serve/engine.h"
#include "support/rng.h"

namespace mugi {
namespace serve {
namespace {

TEST(PreparedWeights, ReusedHandleIsBitIdenticalToOneShot)
{
    const Engine engine(sim::make_mugi(64));
    std::mt19937 rng(313);
    support::MatrixF weights(48, 96);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);

    const PreparedWeights prepared =
        engine.prepare_weights(weights, 32);
    for (int trial = 0; trial < 3; ++trial) {
        support::MatrixF acts(96, 8);
        support::fill_gaussian(acts, rng, 0.0f, 1.0f);
        const GemmRun reused = engine.run_woq_gemm(prepared, acts);
        const GemmRun one_shot = engine.run_woq_gemm(weights, acts, 32);
        ASSERT_EQ(reused.out.rows(), one_shot.out.rows());
        ASSERT_EQ(reused.out.cols(), one_shot.out.cols());
        for (std::size_t i = 0; i < reused.out.size(); ++i) {
            EXPECT_EQ(reused.out.data()[i], one_shot.out.data()[i])
                << "trial " << trial << " element " << i;
        }
        EXPECT_EQ(reused.cycles, one_shot.cycles);
    }
}

TEST(PreparedWeights, QuantizesExactlyOnce)
{
    // The handle shares one immutable quantization: copies alias the
    // same storage instead of re-quantizing.
    const Engine engine(sim::make_mugi(32));
    std::mt19937 rng(77);
    support::MatrixF weights(16, 32);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);

    const PreparedWeights a = engine.prepare_weights(weights, 16);
    const PreparedWeights b = a;  // Handle copy, not a re-quantize.
    EXPECT_EQ(&a.quantized(), &b.quantized());
    EXPECT_EQ(a.group_size(), 16u);
    EXPECT_EQ(a.rows(), 16u);
    EXPECT_EQ(a.cols(), 32u);
    // INT4 + per-group BF16 scales: ~4x smaller than float storage.
    EXPECT_LT(a.byte_size(), weights.size() * sizeof(float) / 3);
}

TEST(PreparedWeights, ZeroCopyExecutionMatchesLegacyGroupCopies)
{
    // The pre-optimization run_prepared_gemm materialized per-group
    // weight/activation submatrices and ran the kernel over the
    // copies.  Replicate that execution here (against the baseline
    // kernel) and require the cached-schedule path to match bit for
    // bit -- including a group-size tail (cols % group_size != 0).
    std::mt19937 rng(909);
    for (const std::size_t group_size : {16u, 24u, 96u}) {
        support::MatrixF weights(37, 80);  // 80 % 24 != 0: tail group.
        support::MatrixF acts(80, 11);
        support::fill_gaussian(weights, rng, 0.0f, 0.5f);
        support::fill_gaussian(acts, rng, 0.0f, 1.0f);
        const PreparedWeights prepared(weights, group_size);
        const GemmRun run =
            run_prepared_gemm(prepared, acts, 16, 8);

        const quant::QuantizedMatrix& q = prepared.quantized();
        support::MatrixF expected(q.rows(), acts.cols(), 0.0f);
        std::uint64_t cycles = 0, sweeps = 0, subscriptions = 0;
        const std::size_t groups =
            (q.cols() + group_size - 1) / group_size;
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t begin = g * group_size;
            const std::size_t end =
                std::min(begin + group_size, q.cols());
            vlp::Int4Matrix wg(q.rows(), end - begin);
            support::MatrixF ag(end - begin, acts.cols());
            for (std::size_t r = 0; r < q.rows(); ++r) {
                for (std::size_t c = begin; c < end; ++c) {
                    wg.at(r, c - begin) = q.values.at(r, c);
                }
            }
            for (std::size_t c = begin; c < end; ++c) {
                for (std::size_t b = 0; b < acts.cols(); ++b) {
                    ag.at(c - begin, b) = acts.at(c, b);
                }
            }
            const vlp::VlpGemmResult partial =
                vlp::vlp_gemm_mugi_baseline(wg, ag, 16, 8);
            cycles += partial.cycles;
            sweeps += partial.sweeps;
            subscriptions += partial.subscriptions;
            for (std::size_t r = 0; r < expected.rows(); ++r) {
                const float scale = q.scales.at(r, g);
                for (std::size_t b = 0; b < expected.cols(); ++b) {
                    expected.at(r, b) += partial.out.at(r, b) * scale;
                }
            }
        }
        EXPECT_TRUE(run.out == expected)
            << "group size " << group_size;
        EXPECT_EQ(run.cycles, cycles);
        EXPECT_EQ(run.sweeps, sweeps);
        EXPECT_EQ(run.subscriptions, subscriptions);
    }
}

TEST(PreparedWeights, GemmRunCarriesAllCounters)
{
    // run_prepared_gemm used to aggregate only cycles; sweeps and
    // subscriptions must now survive the per-group partials too, and
    // agree with the analytic whole-GEMM formulas.
    const Engine engine(sim::make_mugi(64));
    std::mt19937 rng(811);
    support::MatrixF weights(48, 96);
    support::MatrixF acts(96, 8);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);
    support::fill_gaussian(acts, rng, 0.0f, 1.0f);
    const GemmRun run =
        engine.run_woq_gemm(engine.prepare_weights(weights, 32), acts);
    EXPECT_EQ(run.cycles,
              vlp::vlp_gemm_mugi_cycles(48, 8, 96, 64, 8));
    EXPECT_EQ(run.sweeps, run.cycles / 8);
    EXPECT_EQ(run.subscriptions, 48u * 96u * 8u);
    EXPECT_EQ(run.stats().cycles, run.cycles);
}

TEST(PreparedWeights, AgreesWithDequantizedReference)
{
    const Engine engine(sim::make_mugi(32));
    std::mt19937 rng(511);
    support::MatrixF weights(24, 64);
    support::MatrixF acts(64, 8);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);
    support::fill_gaussian(acts, rng, 0.0f, 1.0f);

    const PreparedWeights prepared =
        engine.prepare_weights(weights, 16);
    const GemmRun run = engine.run_woq_gemm(prepared, acts);
    const support::MatrixF deq = quant::dequantize(prepared.quantized());
    const support::MatrixF expected = support::matmul(deq, acts);
    for (std::size_t r = 0; r < expected.rows(); ++r) {
        for (std::size_t c = 0; c < expected.cols(); ++c) {
            EXPECT_NEAR(run.out.at(r, c), expected.at(r, c), 2e-3);
        }
    }
}

}  // namespace
}  // namespace serve
}  // namespace mugi
