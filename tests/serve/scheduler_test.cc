/**
 * @file
 * Acceptance contract of the request-lifecycle API
 * (serve::Scheduler): (1) a mixed prefill+decode step preserves the
 * exact-sum workload invariant -- its MACs / nonlinear elements
 * equal the sum of the equivalent standalone prefill-chunk and
 * decode workloads; (2) the functional scheduler's output is
 * bit-identical to serving the same requests one at a time; (3)
 * admission control keeps the exact KV footprint under the budget.
 */

#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "model/workload.h"

namespace mugi {
namespace serve {
namespace {

// ---- (1) Mixed-step workload: the exact-sum invariant. ----

TEST(MixedStepWorkload, ExactSumOfStandaloneChunkAndDecodeWorkloads)
{
    const model::ModelConfig config = model::llama2_70b();
    const std::vector<std::size_t> decode_contexts = {64, 300, 4096};
    const std::vector<model::PrefillChunk> chunks = {
        {0, 32}, {100, 57}, {512, 256}};

    const model::Workload mixed = model::build_mixed_step_workload(
        config, decode_contexts, chunks);

    std::uint64_t macs = 0, nonlinear = 0;
    std::size_t tokens = 0;
    for (const std::size_t c : decode_contexts) {
        const model::Workload single =
            model::build_decode_workload(config, 1, c);
        macs += single.total_macs();
        nonlinear += single.total_nonlinear_elements();
        tokens += single.tokens();
    }
    for (const model::PrefillChunk& chunk : chunks) {
        const model::Workload single =
            model::build_prefill_chunk_workload(config, chunk);
        macs += single.total_macs();
        nonlinear += single.total_nonlinear_elements();
        tokens += single.tokens();
    }
    EXPECT_EQ(mixed.total_macs(), macs);
    EXPECT_EQ(mixed.total_nonlinear_elements(), nonlinear);
    EXPECT_EQ(mixed.tokens(), tokens);

    // The whole mixed step streams the WOQ weights exactly once.
    const model::Workload one =
        model::build_decode_workload(config, 1, decode_contexts[0]);
    EXPECT_EQ(mixed.total_weight_bytes(), one.total_weight_bytes());
}

TEST(MixedStepWorkload, ChunkingNeverChangesTotalAttention)
{
    // Splitting a prompt into chunks must not change the summed
    // causal-attention volume: attended() is exact, not an average.
    const model::ModelConfig config = model::llama2_7b();
    const model::PrefillChunk whole = {0, 100};
    const std::vector<model::PrefillChunk> split = {
        {0, 50}, {50, 30}, {80, 20}};

    const model::Workload whole_w =
        model::build_prefill_chunk_workload(config, whole);
    std::uint64_t macs = 0, nonlinear = 0;
    for (const model::PrefillChunk& chunk : split) {
        const model::Workload w =
            model::build_prefill_chunk_workload(config, chunk);
        macs += w.total_macs();
        nonlinear += w.total_nonlinear_elements();
    }
    EXPECT_EQ(whole_w.total_macs(), macs);
    EXPECT_EQ(whole_w.total_nonlinear_elements(), nonlinear);

    // attended() arithmetic: chunk of C tokens after S cached ones
    // attends S*C + C(C+1)/2 positions.
    EXPECT_EQ((model::PrefillChunk{0, 4}).attended(), 10u);
    EXPECT_EQ((model::PrefillChunk{10, 3}).attended(), 36u);
}

TEST(MixedStepWorkload, EmptyChunksDegenerateToMixedDecode)
{
    const model::ModelConfig config = model::llama2_13b();
    const std::vector<std::size_t> contexts = {17, 900};
    const model::Workload decode_only =
        model::build_mixed_decode_workload(config, contexts);
    const model::Workload step =
        model::build_mixed_step_workload(config, contexts, {});
    EXPECT_EQ(step.total_macs(), decode_only.total_macs());
    EXPECT_EQ(step.total_weight_bytes(),
              decode_only.total_weight_bytes());
    EXPECT_EQ(step.total_nonlinear_elements(),
              decode_only.total_nonlinear_elements());
    EXPECT_EQ(step.tokens(), decode_only.tokens());
}

// ---- (2) Functional scheduler == sequential serving. ----

TEST(Scheduler, FunctionalOutputBitIdenticalToSequentialServing)
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 777);
    const Engine engine(sim::make_mugi(64), transformer);

    const std::vector<std::size_t> prompt_lens = {5, 9, 13, 6};
    std::vector<std::vector<int>> prompts;
    for (std::size_t i = 0; i < prompt_lens.size(); ++i) {
        prompts.push_back(model::synthetic_tokens(
            prompt_lens[i], config.vocab,
            static_cast<std::uint32_t>(40 + i)));
    }
    const std::size_t kMaxNew = 6;

    // Reference: one request at a time, full prefill then stepping.
    std::vector<std::vector<int>> expected;
    for (const std::vector<int>& prompt : prompts) {
        Session session = engine.create_session();
        std::vector<float> logits = engine.prefill(session, prompt);
        std::vector<int> generated;
        int token = static_cast<int>(std::distance(
            logits.begin(),
            std::max_element(logits.begin(), logits.end())));
        generated.push_back(token);
        while (generated.size() < kMaxNew) {
            const StepResult r = engine.step(session, token);
            token = r.outputs[0].next_token;
            generated.push_back(token);
        }
        expected.push_back(std::move(generated));
    }

    // Scheduler: tiny chunks force multi-chunk prefill, and a small
    // batch target forces queueing -- neither may change numerics.
    SchedulerConfig sched_config;
    sched_config.prefill_chunk_tokens = units::Tokens(4);
    sched_config.max_batch = 2;
    Scheduler scheduler(engine, sched_config);
    std::vector<std::uint64_t> ids;
    for (const std::vector<int>& prompt : prompts) {
        Request request;
        request.prompt = prompt;
        request.max_new_tokens = units::Tokens(kMaxNew);
        ids.push_back(scheduler.submit(std::move(request)));
    }
    std::vector<FinishedRequest> finished = scheduler.run();

    ASSERT_EQ(finished.size(), prompts.size());
    for (std::size_t i = 0; i < finished.size(); ++i) {
        // Map back by id (finish order may differ from submission).
        const std::size_t idx = static_cast<std::size_t>(
            std::distance(ids.begin(),
                          std::find(ids.begin(), ids.end(),
                                    finished[i].id)));
        ASSERT_LT(idx, expected.size());
        EXPECT_EQ(finished[i].tokens, expected[idx])
            << "request " << idx << " diverged from sequential serving";
        EXPECT_EQ(finished[i].generated, units::Tokens(kMaxNew));
        EXPECT_EQ(finished[i].prompt_tokens,
                  units::Tokens(prompt_lens[idx]));
        EXPECT_EQ(finished[i].reason, FinishReason::kMaxTokens);
    }
}

TEST(Scheduler, StopTokenEndsGenerationEarly)
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 321);
    const Engine engine(sim::make_mugi(64), transformer);
    const std::vector<int> prompt =
        model::synthetic_tokens(7, config.vocab, 11);

    // Learn the greedy continuation, then stop on its third token.
    Request probe;
    probe.prompt = prompt;
    probe.max_new_tokens = units::Tokens(5);
    Scheduler probe_scheduler(engine, {});
    probe_scheduler.submit(probe);
    const std::vector<int> continuation =
        probe_scheduler.run()[0].tokens;
    ASSERT_EQ(continuation.size(), 5u);

    Request request;
    request.prompt = prompt;
    request.max_new_tokens = units::Tokens(5);
    request.stop_token = continuation[2];
    Scheduler scheduler(engine, {});
    scheduler.submit(std::move(request));
    const std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].reason, FinishReason::kStopToken);
    ASSERT_EQ(finished[0].tokens.size(), 3u);
    EXPECT_EQ(finished[0].tokens[2], continuation[2]);
}

TEST(Scheduler, StreamsTokensInOrder)
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 99);
    const Engine engine(sim::make_mugi(64), transformer);

    std::vector<std::pair<std::size_t, int>> streamed;
    Request request;
    request.prompt = model::synthetic_tokens(6, config.vocab, 3);
    request.max_new_tokens = units::Tokens(4);
    request.on_token = [&](std::uint64_t, std::size_t index,
                           int token) {
        streamed.emplace_back(index, token);
    };
    Scheduler scheduler(engine, {});
    scheduler.submit(std::move(request));
    const std::vector<FinishedRequest> finished = scheduler.run();

    ASSERT_EQ(streamed.size(), 4u);
    for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i].first, i);
        EXPECT_EQ(streamed[i].second, finished[0].tokens[i]);
    }
}

// ---- (3) Admission control under the KV budget. ----

TEST(Scheduler, KvBudgetCapsConcurrencyAndPeakFootprint)
{
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);

    // Per-request projection: prompt 96 + 32 new tokens of INT4 KV.
    const units::Bytes per_request =
        quant::KvCache::bytes_per_position(
            config.num_kv_heads, config.head_dim(),
            quant::KvPrecision::kInt4) *
        config.num_layers * (96 + 32);

    SchedulerConfig sched_config;
    sched_config.kv_budget_bytes =
        per_request * 2 + per_request / 2;
    sched_config.prefill_chunk_tokens = units::Tokens(48);
    sched_config.max_batch = 8;  // Budget binds before the batch cap.
    Scheduler scheduler(engine, sched_config);
    for (int i = 0; i < 5; ++i) {
        Request request;
        request.analytic_prompt_tokens = units::Tokens(96);
        request.max_new_tokens = units::Tokens(32);
        scheduler.submit(std::move(request));
    }

    std::size_t max_active = 0;
    while (scheduler.step()) {
        max_active = std::max(max_active, scheduler.active());
        EXPECT_LE(scheduler.kv_bytes_in_use(),
                  sched_config.kv_budget_bytes);
    }
    EXPECT_EQ(max_active, 2u) << "budget admits exactly two requests";

    const ServerStats stats = scheduler.stats();
    EXPECT_EQ(stats.finished, 5u);
    EXPECT_LE(stats.peak_kv_bytes, sched_config.kv_budget_bytes);
    EXPECT_GT(stats.peak_kv_bytes, units::Bytes(0));
    // Later requests waited in the admission queue.
    EXPECT_GT(stats.mean_queue_s, 0.0);
}

TEST(Scheduler, OversizedRequestStillRunsAlone)
{
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    SchedulerConfig sched_config;
    sched_config.kv_budget_bytes = units::Bytes(1);  // Smaller than any request.
    Scheduler scheduler(engine, sched_config);
    Request request;
    request.analytic_prompt_tokens = units::Tokens(16);
    request.max_new_tokens = units::Tokens(4);
    scheduler.submit(std::move(request));
    const std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 1u);
    EXPECT_EQ(finished[0].generated, units::Tokens(4));
}

// ---- Paged KV: block reservation and preemption. ----

TEST(Scheduler, PreemptionKeepsOutputBitIdentical)
{
    // The paged-KV acceptance bar: a run that evicts a request under
    // memory pressure and re-prefills it must emit exactly the tokens
    // an uncontended sequential run emits.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 555);
    const Engine engine(sim::make_mugi(64), transformer);

    const std::vector<std::vector<int>> prompts = {
        model::synthetic_tokens(6, config.vocab, 71),
        model::synthetic_tokens(6, config.vocab, 72)};
    const std::size_t kMaxNew = 10;

    // Reference: one request at a time, no contention.
    std::vector<std::vector<int>> expected;
    for (const std::vector<int>& prompt : prompts) {
        Session session = engine.create_session();
        std::vector<float> logits = engine.prefill(session, prompt);
        std::vector<int> generated;
        int token = static_cast<int>(std::distance(
            logits.begin(),
            std::max_element(logits.begin(), logits.end())));
        generated.push_back(token);
        while (generated.size() < kMaxNew) {
            const StepResult r = engine.step(session, token);
            token = r.outputs[0].next_token;
            generated.push_back(token);
        }
        expected.push_back(std::move(generated));
    }

    // Budget admits both prompts but not both full generations: with
    // 4-token blocks, each request needs 2 block-groups at admission
    // (7 positions) and 4 by the end (16 positions), so a 5-group
    // budget forces the later-admitted request out mid-decode.
    const units::Bytes group = sim::kv_footprint(
        config, units::Positions(1), quant::KvPrecision::kInt4,
        units::Tokens(4)).paged_bytes;
    SchedulerConfig sched_config;
    sched_config.kv_block_tokens = units::Tokens(4);
    sched_config.kv_budget_bytes = group * 5;
    sched_config.max_batch = 2;
    Scheduler scheduler(engine, sched_config);
    std::vector<std::uint64_t> ids;
    for (const std::vector<int>& prompt : prompts) {
        Request request;
        request.prompt = prompt;
        request.max_new_tokens = units::Tokens(kMaxNew);
        ids.push_back(scheduler.submit(std::move(request)));
    }
    const std::vector<FinishedRequest> finished = scheduler.run();

    EXPECT_GE(scheduler.preemptions(), 1u)
        << "the budget must actually trigger an eviction";
    ASSERT_EQ(finished.size(), prompts.size());
    std::size_t preempted_requests = 0;
    for (const FinishedRequest& f : finished) {
        const std::size_t idx = static_cast<std::size_t>(
            std::distance(ids.begin(),
                          std::find(ids.begin(), ids.end(), f.id)));
        ASSERT_LT(idx, expected.size());
        EXPECT_EQ(f.tokens, expected[idx])
            << "request " << idx
            << " diverged after preempt + re-prefill";
        EXPECT_EQ(f.generated, units::Tokens(kMaxNew));
        preempted_requests += f.preemptions > 0 ? 1 : 0;
    }
    EXPECT_GE(preempted_requests, 1u);
    const ServerStats stats = scheduler.stats();
    EXPECT_EQ(stats.preemptions, scheduler.preemptions());
    // Recompute work shows up as extra prefill tokens: both prompts
    // plus at least the victim's replayed history.
    EXPECT_GT(stats.prefill_tokens,
              units::Tokens(2 * prompts[0].size()));
}

TEST(Scheduler, PriorityChoosesThePreemptionVictim)
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 556);
    const Engine engine(sim::make_mugi(64), transformer);

    const units::Bytes group = sim::kv_footprint(
        config, units::Positions(1), quant::KvPrecision::kInt4,
        units::Tokens(4)).paged_bytes;
    SchedulerConfig sched_config;
    sched_config.kv_block_tokens = units::Tokens(4);
    sched_config.kv_budget_bytes = group * 5;
    sched_config.max_batch = 2;
    Scheduler scheduler(engine, sched_config);

    // The earlier-submitted request has *lower* priority, so it --
    // not the default tie-break victim -- must be evicted.
    Request low;
    low.prompt = model::synthetic_tokens(6, config.vocab, 81);
    low.max_new_tokens = units::Tokens(10);
    low.priority = -1;
    const std::uint64_t low_id = scheduler.submit(std::move(low));
    Request high;
    high.prompt = model::synthetic_tokens(6, config.vocab, 82);
    high.max_new_tokens = units::Tokens(10);
    const std::uint64_t high_id = scheduler.submit(std::move(high));

    const std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 2u);
    ASSERT_GE(scheduler.preemptions(), 1u);
    for (const FinishedRequest& f : finished) {
        if (f.id == low_id) {
            EXPECT_GE(f.preemptions, 1u);
        } else {
            EXPECT_EQ(f.id, high_id);
            EXPECT_EQ(f.preemptions, 0u);
        }
    }
}

TEST(Scheduler, PagedReservationAdmitsMoreThanFullProjection)
{
    // The motivating claim: at the same budget, block-level
    // reservation keeps strictly more sessions resident than
    // admitting against each request's full projected length.
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    const std::size_t B = 8;
    const units::Bytes group = sim::kv_footprint(
        config, units::Positions(1), quant::KvPrecision::kInt4,
        units::Tokens(B)).paged_bytes;

    const auto serve_trace = [&](AdmissionMode mode,
                                 std::size_t* max_active,
                                 ServerStats* stats_out) {
        SchedulerConfig sched_config;
        sched_config.admission = mode;
        sched_config.kv_block_tokens = units::Tokens(B);
        sched_config.kv_budget_bytes = group * 12;
        sched_config.prefill_chunk_tokens = units::Tokens(24);
        sched_config.max_batch = 8;
        Scheduler scheduler(engine, sched_config);
        for (int i = 0; i < 4; ++i) {
            Request request;
            request.analytic_prompt_tokens = units::Tokens(24);
            request.max_new_tokens = units::Tokens(60);
            scheduler.submit(std::move(request));
        }
        *max_active = 0;
        while (scheduler.step()) {
            *max_active = std::max(*max_active, scheduler.active());
        }
        *stats_out = scheduler.stats();
    };

    std::size_t active_projection = 0, active_paged = 0;
    ServerStats projection, paged;
    serve_trace(AdmissionMode::kFullProjection, &active_projection,
                &projection);
    serve_trace(AdmissionMode::kPagedReservation, &active_paged,
                &paged);

    EXPECT_EQ(projection.finished, 4u);
    EXPECT_EQ(paged.finished, 4u);
    // Projection charges ceil(84/8) = 11 groups per request up front:
    // the 12-group budget serializes everything.  Paged charges
    // ceil(25/8) = 4 groups + watermark and reclaims under pressure.
    EXPECT_EQ(active_projection, 1u);
    EXPECT_GT(active_paged, active_projection);
    // Projection never preempts (its reservation covers the full
    // generation); paged trades preemptions for concurrency.
    EXPECT_EQ(projection.preemptions, 0u);
    // Both disciplines respect the budget's high-water mark.
    EXPECT_LE(projection.peak_kv_bytes, 12 * group);
    EXPECT_LE(paged.peak_kv_bytes, 12 * group);
    EXPECT_GT(paged.peak_pool_utilization,
              projection.peak_pool_utilization);
}

TEST(Scheduler, PoolExhaustionRefusesAdmissionUntilBlocksFree)
{
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    const std::size_t B = 8;
    const units::Bytes group = sim::kv_footprint(
        config, units::Positions(1), quant::KvPrecision::kInt4,
        units::Tokens(B)).paged_bytes;

    // Each request needs 4 block-groups (25 positions at B=8); a
    // 5-group budget cannot hold two plus the watermark, so the
    // second waits for the first to release its blocks.
    SchedulerConfig sched_config;
    sched_config.kv_block_tokens = units::Tokens(B);
    sched_config.kv_budget_bytes = group * 5;
    sched_config.max_batch = 4;
    Scheduler scheduler(engine, sched_config);
    for (int i = 0; i < 2; ++i) {
        Request request;
        request.analytic_prompt_tokens = units::Tokens(24);
        request.max_new_tokens = units::Tokens(4);
        scheduler.submit(std::move(request));
    }
    std::size_t max_active = 0;
    bool saw_refusal = false;
    while (scheduler.step()) {
        max_active = std::max(max_active, scheduler.active());
        saw_refusal |=
            scheduler.active() == 1 && scheduler.queued() == 1;
        EXPECT_LE(scheduler.kv_bytes_in_use(),
                  sched_config.kv_budget_bytes);
    }
    EXPECT_EQ(max_active, 1u);
    EXPECT_TRUE(saw_refusal);
    const ServerStats stats = scheduler.stats();
    EXPECT_EQ(stats.finished, 2u);
    EXPECT_EQ(stats.preemptions, 0u);
}

// ---- Prefix caching: refcounted block reuse across requests. ----

TEST(Scheduler, PrefixCachingSharesBlocksAndKeepsTokensBitIdentical)
{
    // The tentpole acceptance bar: requests sharing a long system
    // prompt reuse the donor's resident KV blocks -- prefill work
    // drops, TTFT improves, and the generated tokens stay
    // bit-identical to a run with sharing disabled.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 808);
    const Engine engine(sim::make_mugi(64), transformer);

    // 12 shared tokens (3 blocks at B=4) + 3 distinct suffix tokens.
    const std::vector<int> system_prompt =
        model::synthetic_tokens(12, config.vocab, 900);
    std::vector<std::vector<int>> prompts;
    for (std::size_t i = 0; i < 4; ++i) {
        std::vector<int> prompt = system_prompt;
        const std::vector<int> suffix = model::synthetic_tokens(
            3, config.vocab, static_cast<std::uint32_t>(910 + i));
        prompt.insert(prompt.end(), suffix.begin(), suffix.end());
        prompts.push_back(std::move(prompt));
    }

    const auto serve_trace = [&](bool sharing) {
        SchedulerConfig sched_config;
        sched_config.kv_block_tokens = units::Tokens(4);
        sched_config.prefill_chunk_tokens = units::Tokens(64);
        sched_config.max_batch = 4;
        sched_config.prefix_caching = sharing;
        Scheduler scheduler(engine, sched_config);
        std::vector<std::uint64_t> ids;
        for (std::size_t i = 0; i < prompts.size(); ++i) {
            Request request;
            request.prompt = prompts[i];
            // The donor finishes early so its blocks outlive it via
            // the sharers' refcounts.
            request.max_new_tokens = units::Tokens(i == 0 ? 2 : 6);
            // Sharers arrive one modeled instant later, after the
            // donor's prefill made the prefix resident.
            request.arrival_time_s = i == 0 ? 0.0 : 1e-12;
            ids.push_back(scheduler.submit(std::move(request)));
        }
        std::vector<FinishedRequest> finished = scheduler.run();
        // Everything released: the pool must drain to exactly zero.
        EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
        std::vector<std::vector<int>> tokens(prompts.size());
        for (FinishedRequest& f : finished) {
            const std::size_t idx = static_cast<std::size_t>(
                std::distance(ids.begin(),
                              std::find(ids.begin(), ids.end(),
                                        f.id)));
            tokens[idx] = std::move(f.tokens);
        }
        return std::make_pair(std::move(tokens), scheduler.stats());
    };

    const auto [tokens_off, stats_off] = serve_trace(false);
    const auto [tokens_on, stats_on] = serve_trace(true);

    // Bit-identical generations, request by request.
    ASSERT_EQ(tokens_on.size(), tokens_off.size());
    for (std::size_t i = 0; i < tokens_on.size(); ++i) {
        EXPECT_EQ(tokens_on[i], tokens_off[i])
            << "request " << i << " diverged under prefix sharing";
    }

    // Three sharers each mapped 3 blocks / 12 tokens of prompt.
    EXPECT_EQ(stats_off.prefix_hits, 0u);
    EXPECT_EQ(stats_off.saved_prefill_tokens, units::Tokens(0));
    EXPECT_EQ(stats_on.prefix_hits, 3u);
    EXPECT_EQ(stats_on.shared_blocks, units::Blocks(9));
    EXPECT_EQ(stats_on.saved_prefill_tokens, units::Tokens(36));
    EXPECT_EQ(stats_on.prefill_tokens + units::Tokens(36), stats_off.prefill_tokens);
    // Skipping prefill work makes the mean TTFT strictly better, and
    // physical sharing makes the peak footprint strictly smaller.
    EXPECT_LT(stats_on.mean_ttft_s, stats_off.mean_ttft_s);
    EXPECT_LT(stats_on.peak_kv_bytes, stats_off.peak_kv_bytes);
}

TEST(Scheduler, PreemptionNeverFreesASharedBlockUnderTheSharer)
{
    // A sharer evicted under pressure must not take the donor's
    // blocks with it, and (re-)admission plus recompute must keep
    // its output bit-identical to an uncontended run.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 809);
    const Engine engine(sim::make_mugi(64), transformer);

    const std::vector<int> system_prompt =
        model::synthetic_tokens(8, config.vocab, 930);
    std::vector<std::vector<int>> prompts;
    for (std::size_t i = 0; i < 2; ++i) {
        std::vector<int> prompt = system_prompt;
        const std::vector<int> suffix = model::synthetic_tokens(
            2, config.vocab, static_cast<std::uint32_t>(940 + i));
        prompt.insert(prompt.end(), suffix.begin(), suffix.end());
        prompts.push_back(std::move(prompt));
    }
    const std::size_t kMaxNew = 8;

    // Reference: uncontended sequential serving.
    std::vector<std::vector<int>> expected;
    for (const std::vector<int>& prompt : prompts) {
        Session session = engine.create_session();
        std::vector<float> logits = engine.prefill(session, prompt);
        std::vector<int> generated;
        int token = static_cast<int>(std::distance(
            logits.begin(),
            std::max_element(logits.begin(), logits.end())));
        generated.push_back(token);
        while (generated.size() < kMaxNew) {
            const StepResult r = engine.step(session, token);
            token = r.outputs[0].next_token;
            generated.push_back(token);
        }
        expected.push_back(std::move(generated));
    }

    // Each request ends at 17 positions = 5 groups (B=4); 2 groups
    // are shared, so the pair peaks at 8 distinct groups -- a
    // 6-group budget admits both (sharing discounts the sharer to 1
    // group up front) but must evict the sharer mid-decode.
    const units::Bytes group = sim::kv_footprint(
        config, units::Positions(1), quant::KvPrecision::kInt4,
        units::Tokens(4)).paged_bytes;
    SchedulerConfig sched_config;
    sched_config.kv_block_tokens = units::Tokens(4);
    sched_config.kv_budget_bytes = group * 6;
    sched_config.max_batch = 2;
    sched_config.prefill_chunk_tokens = units::Tokens(64);
    Scheduler scheduler(engine, sched_config);
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
        Request request;
        request.prompt = prompts[i];
        request.max_new_tokens = units::Tokens(kMaxNew);
        request.arrival_time_s = i == 0 ? 0.0 : 1e-12;
        ids.push_back(scheduler.submit(std::move(request)));
    }
    const std::vector<FinishedRequest> finished = scheduler.run();

    EXPECT_GE(scheduler.preemptions(), 1u)
        << "the budget must actually evict the sharer";
    const ServerStats stats = scheduler.stats();
    EXPECT_GE(stats.prefix_hits, 1u) << "sharing must happen first";
    ASSERT_EQ(finished.size(), prompts.size());
    for (const FinishedRequest& f : finished) {
        const std::size_t idx = static_cast<std::size_t>(
            std::distance(ids.begin(),
                          std::find(ids.begin(), ids.end(), f.id)));
        ASSERT_LT(idx, expected.size());
        EXPECT_EQ(f.tokens, expected[idx])
            << "request " << idx
            << " diverged after sharing + preemption";
    }
    EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
}

TEST(Scheduler, AnalyticPrefixGroupsShareRefcountedReservations)
{
    // Analytic serving mirrors the tentpole: requests declaring a
    // common prefix_group skip the shared chunks and charge the
    // shared reservation once across sharers.
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);

    const auto serve_trace = [&](bool sharing) {
        SchedulerConfig sched_config;
        sched_config.kv_block_tokens = units::Tokens(16);
        sched_config.prefill_chunk_tokens = units::Tokens(128);
        sched_config.max_batch = 4;
        sched_config.prefix_caching = sharing;
        Scheduler scheduler(engine, sched_config);
        for (std::size_t i = 0; i < 3; ++i) {
            Request request;
            request.analytic_prompt_tokens = units::Tokens(80);
            request.max_new_tokens = units::Tokens(8);
            request.prefix_group = 77;
            request.prefix_tokens = units::Tokens(64);
            request.arrival_time_s = i == 0 ? 0.0 : 1e-12;
            scheduler.submit(std::move(request));
        }
        scheduler.run();
        EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0))
            << "refcounted reservations must unwind to exactly zero";
        return scheduler.stats();
    };

    const ServerStats off = serve_trace(false);
    const ServerStats on = serve_trace(true);
    EXPECT_EQ(off.finished, 3u);
    EXPECT_EQ(on.finished, 3u);
    EXPECT_EQ(off.prefix_hits, 0u);
    // Two sharers x 4 blocks x 16 tokens of skipped prefill.
    EXPECT_EQ(on.prefix_hits, 2u);
    EXPECT_EQ(on.shared_blocks, units::Blocks(8));
    EXPECT_EQ(on.saved_prefill_tokens, units::Tokens(128));
    EXPECT_EQ(on.prefill_tokens + units::Tokens(128), off.prefill_tokens);
    EXPECT_LT(on.mean_ttft_s, off.mean_ttft_s);
    // The shared reservation is charged once, not per sharer.
    EXPECT_LT(on.peak_kv_bytes, off.peak_kv_bytes);
}

TEST(Scheduler, AnalyticSharerIsResidentBeforeThePressureCheck)
{
    // Regression: the sharer's adopted prefix must count as resident
    // the moment it is admitted.  It used to be credited only by the
    // post-step reservation sync, so the pre-step pressure check saw
    // the full un-discounted growth slack and preempt-thrashed the
    // sharer on a budget it actually fits.
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    const units::Bytes group = sim::kv_footprint(
        config, units::Positions(1), quant::KvPrecision::kInt4,
        units::Tokens(16)).paged_bytes;

    // Donor + sharer peak at 8 distinct groups (6 each, 4 shared);
    // with the watermark, 9 groups fit both for the whole run.
    SchedulerConfig sched_config;
    sched_config.kv_block_tokens = units::Tokens(16);
    sched_config.kv_budget_bytes = group * 9;
    sched_config.prefill_chunk_tokens = units::Tokens(128);
    sched_config.max_batch = 4;
    Scheduler scheduler(engine, sched_config);
    for (std::size_t i = 0; i < 2; ++i) {
        Request request;
        request.analytic_prompt_tokens = units::Tokens(80);
        request.max_new_tokens = units::Tokens(8);
        request.prefix_group = 5;
        request.prefix_tokens = units::Tokens(64);
        request.arrival_time_s = i == 0 ? 0.0 : 1e-12;
        scheduler.submit(std::move(request));
    }
    std::size_t max_active = 0;
    while (scheduler.step()) {
        max_active = std::max(max_active, scheduler.active());
        EXPECT_LE(scheduler.kv_bytes_in_use(),
                  sched_config.kv_budget_bytes);
    }
    const ServerStats stats = scheduler.stats();
    EXPECT_EQ(stats.finished, 2u);
    EXPECT_EQ(stats.prefix_hits, 1u);
    EXPECT_EQ(max_active, 2u) << "sharing must let both be resident";
    EXPECT_EQ(stats.preemptions, 0u)
        << "a sharer that fits the budget must not be thrashed";
    EXPECT_EQ(scheduler.kv_bytes_in_use(), units::Bytes(0));
}

// ---- Stats bugfix sweep (regressions). ----

TEST(Scheduler, MeanTpotExcludesSingleTokenRequests)
{
    // tpot_s() is structurally 0 for generated <= 1; such requests
    // used to dilute mean_tpot_s toward zero.
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    Scheduler scheduler(engine, {});

    Request single;
    single.analytic_prompt_tokens = units::Tokens(16);
    single.max_new_tokens = units::Tokens(1);
    const std::uint64_t single_id = scheduler.submit(single);
    Request multi = single;
    multi.max_new_tokens = units::Tokens(6);
    scheduler.submit(multi);

    const std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 2u);
    const FinishedRequest& m =
        finished[0].id == single_id ? finished[1] : finished[0];
    ASSERT_GT(m.generated, units::Tokens(1));
    EXPECT_GT(m.tpot_s(), 0.0);
    const ServerStats stats = scheduler.stats();
    // The mean is exactly the multi-token request's TPOT: the
    // single-token request contributes neither sum nor divisor.
    EXPECT_DOUBLE_EQ(stats.mean_tpot_s, m.tpot_s());
}

TEST(Scheduler, ZeroGenerationRequestsAreExcludedFromTtft)
{
    // A max_new_tokens == 0 request emits no token; it used to stamp
    // a fake first-token time at prefill completion and pollute the
    // TTFT aggregates.
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    Scheduler scheduler(engine, {});

    Request normal;
    normal.analytic_prompt_tokens = units::Tokens(32);
    normal.max_new_tokens = units::Tokens(4);
    const std::uint64_t normal_id = scheduler.submit(normal);
    Request empty = normal;
    empty.max_new_tokens = units::Tokens(0);
    scheduler.submit(empty);

    const std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 2u);
    const FinishedRequest& n =
        finished[0].id == normal_id ? finished[0] : finished[1];
    const FinishedRequest& z =
        finished[0].id == normal_id ? finished[1] : finished[0];
    EXPECT_EQ(z.generated, units::Tokens(0));
    EXPECT_EQ(z.first_token_s, 0.0) << "no token, no milestone";
    EXPECT_EQ(z.ttft_s(), 0.0);
    EXPECT_GT(z.finished_s, 0.0) << "its prefill was real work";

    const ServerStats stats = scheduler.stats();
    EXPECT_EQ(stats.finished, 2u);  // Still counts as finished...
    EXPECT_DOUBLE_EQ(stats.mean_ttft_s, n.ttft_s());  // ...not TTFT.
    EXPECT_DOUBLE_EQ(stats.max_ttft_s, n.ttft_s());
}

TEST(Scheduler, WatermarkSizedToTheLargestResidentPrecision)
{
    // An INT4 admission beside a float resident must leave a
    // float-sized watermark free: the headroom exists to absorb the
    // *residents'* decode growth, and the largest resident grows in
    // float-sized blocks.
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    const units::Bytes group_f = sim::kv_footprint(
        config, units::Positions(1), quant::KvPrecision::kFloat,
        units::Tokens(16)).paged_bytes;
    const units::Bytes group_i = sim::kv_footprint(
        config, units::Positions(1), quant::KvPrecision::kInt4,
        units::Tokens(16)).paged_bytes;
    ASSERT_GT(group_f, group_i);

    // Both requests reserve 2 groups (17 positions).  The budget
    // fits float-A + int4-B + an int4 watermark but NOT a float
    // watermark, so the fixed admission must hold B back while A is
    // resident.
    SchedulerConfig sched_config;
    sched_config.kv_block_tokens = units::Tokens(16);
    sched_config.kv_budget_bytes = units::Bytes(2 * group_f + 3 * group_i);
    sched_config.max_batch = 4;
    Scheduler scheduler(engine, sched_config);
    Request a;
    a.analytic_prompt_tokens = units::Tokens(16);
    a.max_new_tokens = units::Tokens(4);
    a.session.kv_precision = quant::KvPrecision::kFloat;
    scheduler.submit(std::move(a));
    Request b;
    b.analytic_prompt_tokens = units::Tokens(16);
    b.max_new_tokens = units::Tokens(4);
    b.session.kv_precision = quant::KvPrecision::kInt4;
    scheduler.submit(std::move(b));

    std::size_t max_active = 0;
    while (scheduler.step()) {
        max_active = std::max(max_active, scheduler.active());
    }
    EXPECT_EQ(max_active, 1u)
        << "B admitted beside A would eat A's float-sized headroom";
    EXPECT_EQ(scheduler.stats().finished, 2u);
}

TEST(Scheduler, EmptyPromptRetiresImmediatelyWithoutAsserts)
{
    // The assert-guarded branch in submit(): with asserts compiled
    // out (Release CI job), an empty functional prompt must retire
    // immediately instead of feeding token -1 into the model.
#ifndef NDEBUG
    GTEST_SKIP() << "assert-guarded path; exercised by the Release "
                    "CI job";
#else
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 810);
    const Engine engine(sim::make_mugi(64), transformer);
    Scheduler scheduler(engine, {});

    Request empty;
    empty.max_new_tokens = units::Tokens(4);  // No prompt tokens at all.
    const std::uint64_t empty_id = scheduler.submit(std::move(empty));
    Request normal;
    normal.prompt = model::synthetic_tokens(5, config.vocab, 42);
    normal.max_new_tokens = units::Tokens(2);
    scheduler.submit(std::move(normal));

    const std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 2u);
    const FinishedRequest& e =
        finished[0].id == empty_id ? finished[0] : finished[1];
    EXPECT_EQ(e.generated, 0u);
    EXPECT_TRUE(e.tokens.empty());
    EXPECT_EQ(e.ttft_s(), 0.0);
    const FinishedRequest& n =
        finished[0].id == empty_id ? finished[1] : finished[0];
    EXPECT_EQ(n.generated, 2u);
#endif
}

// ---- Arrivals, clock and stats. ----

TEST(Scheduler, StaggeredArrivalsRespectTheModeledClock)
{
    const model::ModelConfig config = model::llama2_7b();
    const Engine engine(sim::make_mugi(256), config);
    Scheduler scheduler(engine, {});

    Request early;
    early.analytic_prompt_tokens = units::Tokens(64);
    early.max_new_tokens = units::Tokens(8);
    scheduler.submit(early);

    Request late = early;
    late.arrival_time_s = 1.0e-3;  // Far beyond the first steps.
    scheduler.submit(late);

    const std::vector<FinishedRequest> finished = scheduler.run();
    ASSERT_EQ(finished.size(), 2u);
    const FinishedRequest& second =
        finished[0].id == 2 ? finished[0] : finished[1];
    EXPECT_GE(second.admitted_s, 1.0e-3);
    EXPECT_GE(second.arrival_s, 1.0e-3);
    EXPECT_GE(second.ttft_s(), 0.0);

    const ServerStats stats = scheduler.stats();
    EXPECT_EQ(stats.finished, 2u);
    EXPECT_GT(stats.mean_ttft_s, 0.0);
    EXPECT_GE(stats.max_ttft_s, stats.mean_ttft_s);
    EXPECT_GT(stats.mean_tpot_s, 0.0);
    EXPECT_GT(stats.horizon.tokens, 0.0);
    EXPECT_FALSE(std::isnan(stats.horizon.energy_per_token_j));
    EXPECT_GT(stats.horizon.energy_per_token_j, 0.0);
    // The horizon processed every prompt and generated token.
    EXPECT_DOUBLE_EQ(stats.horizon.tokens,
                     static_cast<double>((stats.prefill_tokens +
                                          stats.decode_tokens)
                                             .value()));
}

// ---- BatchPolicy: the Fig. 14 knee. ----

TEST(BatchPolicy, DerivesTheThroughputKnee)
{
    const BatchPolicy policy = BatchPolicy::derive(
        sim::make_mugi(256), model::llama2_7b(), 512, 32);
    ASSERT_FALSE(policy.sweep().empty());
    EXPECT_GE(policy.target_batch(), 1u);
    EXPECT_LE(policy.target_batch(), policy.max_batch());

    double best = 0.0;
    for (const BatchSweepPoint& point : policy.sweep()) {
        best = std::max(best, point.throughput_tokens_per_s);
    }
    // The target is the smallest batch within 10% of the best.
    for (const BatchSweepPoint& point : policy.sweep()) {
        if (point.batch == policy.target_batch()) {
            EXPECT_GE(point.throughput_tokens_per_s, 0.9 * best);
        } else if (point.batch < policy.target_batch()) {
            EXPECT_LT(point.throughput_tokens_per_s, 0.9 * best);
        }
    }
    // Mugi maps the batch across its 8 columns (Sec. 4.2): the knee
    // cannot sit past the first power of two to fill them.
    EXPECT_LE(policy.target_batch(), 8u);
}

TEST(BatchPolicy, EvaluateMatchesDirectWorkloadRun)
{
    const sim::DesignConfig design = sim::make_mugi(64);
    const model::ModelConfig models[] = {model::llama2_7b()};
    const BatchSweepPoint point =
        BatchPolicy::evaluate(design, models, 4, 256);
    const sim::PerfReport direct = sim::run_workload(
        design, model::build_decode_workload(models[0], 4, 256));
    EXPECT_NEAR(point.throughput_tokens_per_s,
                direct.throughput_tokens_per_s,
                1e-9 * direct.throughput_tokens_per_s);
    EXPECT_NEAR(point.energy_per_token_j, direct.energy_per_token_j,
                1e-9 * direct.energy_per_token_j);
}

}  // namespace
}  // namespace serve
}  // namespace mugi
