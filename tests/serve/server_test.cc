/**
 * @file
 * Acceptance contract of the push-based serving core
 * (serve::Server): handles stream every token and always resolve;
 * concurrent submitters race the loop thread safely (this file runs
 * under the TSan CI matrix entry); token streams are bit-identical
 * to an in-process Scheduler run; and both shutdown modes leave zero
 * KV bytes behind.
 */

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/server.h"

namespace mugi {
namespace serve {
namespace {

/** Eval-scale functional engine shared by the functional tests. */
struct FunctionalRig {
    model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    std::shared_ptr<model::TransformerModel> transformer =
        std::make_shared<model::TransformerModel>(config, 654);
    Engine engine{sim::make_mugi(64), transformer};

    Request
    request(std::size_t prompt_len, std::size_t max_new,
            std::uint32_t seed) const
    {
        Request r;
        r.prompt =
            model::synthetic_tokens(prompt_len, config.vocab, seed);
        r.max_new_tokens = units::Tokens(max_new);
        return r;
    }
};

TEST(Server, StreamsEveryTokenThenResolvesTheHandle)
{
    FunctionalRig rig;
    Server server(rig.engine);

    RequestHandle handle = server.submit(rig.request(6, 5, 10));
    std::vector<int> streamed;
    std::size_t expected_index = 0;
    while (std::optional<TokenDelta> delta = handle.next()) {
        EXPECT_EQ(delta->id, handle.id());
        EXPECT_EQ(delta->index, expected_index++);
        streamed.push_back(delta->token);
    }
    const FinishedRequest finished = handle.wait();
    EXPECT_EQ(finished.reason, FinishReason::kMaxTokens);
    EXPECT_EQ(finished.tokens, streamed);
    EXPECT_EQ(streamed.size(), 5u);
    // wait() after resolution is idempotent.
    EXPECT_EQ(handle.wait().id, finished.id);
    ASSERT_TRUE(handle.poll().has_value());

    server.shutdown();
    EXPECT_EQ(server.stats().kv_bytes_in_use, units::Bytes(0));
}

TEST(Server, TokensBitIdenticalToInProcessScheduler)
{
    FunctionalRig rig;

    // Reference: the same trace through a plain Scheduler.
    std::vector<Request> trace;
    for (std::uint32_t i = 0; i < 4; ++i) {
        trace.push_back(rig.request(5 + 3 * i, 6 + i, 100 + i));
    }
    std::vector<std::vector<int>> expected;
    {
        Scheduler scheduler(rig.engine, {});
        std::vector<std::uint64_t> ids;
        for (const Request& r : trace) {
            ids.push_back(scheduler.submit(r));
        }
        expected.resize(trace.size());
        for (const FinishedRequest& f : scheduler.run()) {
            for (std::size_t i = 0; i < ids.size(); ++i) {
                if (ids[i] == f.id) {
                    expected[i] = f.tokens;
                }
            }
        }
    }

    Server server(rig.engine);
    std::vector<RequestHandle> handles;
    for (const Request& r : trace) {
        handles.push_back(server.submit(r));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
        // Threading changed where requests come from, never what
        // the engine computes.
        EXPECT_EQ(handles[i].wait().tokens, expected[i]);
    }
    server.shutdown();
    EXPECT_EQ(server.stats().kv_bytes_in_use, units::Bytes(0));
}

TEST(Server, ConcurrentSubmittersAllResolve)
{
    // Analytic engine: cheap requests, many racing submitters.
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    ServerConfig config;
    config.scheduler.prefill_chunk_tokens = units::Tokens(256);
    Server server(engine, config);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 6;
    std::atomic<int> finished{0};
    {
        std::vector<std::thread> submitters;
        for (int t = 0; t < kThreads; ++t) {
            submitters.emplace_back([&server, &finished, t] {
                for (int i = 0; i < kPerThread; ++i) {
                    Request r;
                    r.analytic_prompt_tokens =
                        units::Tokens(64 + 32 * ((t + i) % 4));
                    r.max_new_tokens = units::Tokens(4);
                    RequestHandle handle =
                        server.submit(std::move(r));
                    const FinishedRequest f = handle.wait();
                    if (f.reason == FinishReason::kMaxTokens &&
                        f.generated == units::Tokens(4)) {
                        finished.fetch_add(1);
                    }
                }
            });
        }
        for (std::thread& t : submitters) {
            t.join();
        }
    }
    EXPECT_EQ(finished.load(), kThreads * kPerThread);

    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.finished,
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(stats.kv_bytes_in_use, units::Bytes(0));
}

TEST(Server, CancelMidStreamKeepsThePrefixAndFreesBlocks)
{
    FunctionalRig rig;

    std::vector<int> full;
    {
        Scheduler scheduler(rig.engine, {});
        scheduler.submit(rig.request(8, 64, 20));
        full = scheduler.run()[0].tokens;
    }

    Server server(rig.engine);
    RequestHandle handle = server.submit(rig.request(8, 64, 20));
    std::vector<int> streamed;
    for (int i = 0; i < 3; ++i) {
        std::optional<TokenDelta> delta = handle.next();
        ASSERT_TRUE(delta.has_value());
        streamed.push_back(delta->token);
    }
    EXPECT_TRUE(handle.cancel());
    // Drain whatever was emitted before the cancel took effect.
    while (std::optional<TokenDelta> delta = handle.next()) {
        streamed.push_back(delta->token);
    }
    const FinishedRequest finished = handle.wait();
    EXPECT_EQ(finished.reason, FinishReason::kCancelled);
    ASSERT_GE(streamed.size(), 3u);
    ASSERT_LE(streamed.size(), full.size());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i], full[i]) << "token " << i;
    }
    // Cancelling an already-retired request reports false.
    EXPECT_FALSE(server.cancel(handle.id()));

    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.kv_bytes_in_use, units::Bytes(0));
}

TEST(Server, DrainShutdownCompletesQueuedWork)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    Server server(engine);

    std::vector<RequestHandle> handles;
    for (int i = 0; i < 5; ++i) {
        Request r;
        r.analytic_prompt_tokens = units::Tokens(128);
        r.max_new_tokens = units::Tokens(4);
        handles.push_back(server.submit(std::move(r)));
    }
    // Drain: submissions already accepted run to natural completion.
    server.shutdown(ShutdownMode::kDrain);
    EXPECT_FALSE(server.accepting());
    for (RequestHandle& handle : handles) {
        EXPECT_EQ(handle.wait().reason, FinishReason::kMaxTokens);
    }

    // A post-shutdown submit never runs: it resolves immediately.
    RequestHandle late = server.submit(Request{});
    const FinishedRequest refused = late.wait();
    EXPECT_EQ(refused.reason, FinishReason::kShutdown);
    EXPECT_EQ(refused.generated, units::Tokens(0));
    EXPECT_FALSE(late.next().has_value());

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.finished, 5u);
    EXPECT_EQ(stats.kv_bytes_in_use, units::Bytes(0));
}

TEST(Server, AbortShutdownResolvesEveryHandleWithZeroBytesHeld)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    Server server(engine);

    std::vector<RequestHandle> handles;
    for (int i = 0; i < 6; ++i) {
        Request r;
        r.analytic_prompt_tokens = units::Tokens(2048);
        r.max_new_tokens = units::Tokens(64);
        handles.push_back(server.submit(std::move(r)));
    }
    server.shutdown(ShutdownMode::kAbort);

    // No handle is left hanging: each resolves as either shutdown
    // (retired early) or a natural finish that beat the abort.
    for (RequestHandle& handle : handles) {
        const FinishedRequest f = handle.wait();
        EXPECT_TRUE(f.reason == FinishReason::kShutdown ||
                    f.reason == FinishReason::kMaxTokens);
        while (handle.try_next()) {
        }
    }
    EXPECT_EQ(server.stats().kv_bytes_in_use, units::Bytes(0));
}

TEST(Server, DeadlinePropagatesThroughTheLoopThread)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    Server server(engine);

    Request r;
    r.analytic_prompt_tokens = units::Tokens(1024);
    r.max_new_tokens = units::Tokens(64);
    r.deadline_s = 1e-9;  // Expires before prefill can finish.
    RequestHandle handle = server.submit(std::move(r));
    const FinishedRequest finished = handle.wait();
    EXPECT_EQ(finished.reason, FinishReason::kDeadline);

    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.kv_bytes_in_use, units::Bytes(0));
}

TEST(Server, DestructorDrainsWithoutExplicitShutdown)
{
    const model::ModelConfig model = model::llama2_70b();
    const Engine engine(sim::make_mugi(256), model);
    std::optional<FinishedRequest> finished;
    {
        Server server(engine);
        Request r;
        r.analytic_prompt_tokens = units::Tokens(64);
        r.max_new_tokens = units::Tokens(2);
        RequestHandle handle = server.submit(std::move(r));
        finished = handle.wait();
    }  // ~Server joins the loop thread.
    ASSERT_TRUE(finished.has_value());
    EXPECT_EQ(finished->reason, FinishReason::kMaxTokens);
}

}  // namespace
}  // namespace serve
}  // namespace mugi
