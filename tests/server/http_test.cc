/**
 * @file
 * Contract of the sockets-only HTTP front-end layer: the JSON
 * grammar round-trips, Listener/Connection/Client speak HTTP/1.1
 * (including chunked streaming) over loopback, and server::Frontend
 * routes generate/cancel/metrics/health correctly -- with a real
 * mid-stream DELETE driven over a raw socket, gated on zero KV bytes
 * left behind.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/server.h"
#include "server/frontend.h"
#include "server/http.h"
#include "server/json.h"
#include "support/fault.h"

namespace mugi {
namespace server {
namespace {

// ---- JSON grammar. ----

TEST(Json, ParsesTheServingRequestShape)
{
    const std::optional<json::Value> v = json::parse(
        "{\"prompt\":[3,1,4],\"max_new_tokens\":8,"
        "\"stream\":false,\"note\":\"a \\\"b\\\" \\n c\"}");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->is_object());
    const json::Value* prompt = v->find("prompt");
    ASSERT_NE(prompt, nullptr);
    ASSERT_TRUE(prompt->is_array());
    ASSERT_EQ(prompt->array.size(), 3u);
    EXPECT_EQ(prompt->array[1].number, 1.0);
    EXPECT_EQ(v->number_or("max_new_tokens", 0.0), 8.0);
    EXPECT_FALSE(v->bool_or("stream", true));
    EXPECT_EQ(v->find("note")->string, "a \"b\" \n c");
    // Absent / mistyped members fall back.
    EXPECT_EQ(v->number_or("missing", -1.0), -1.0);
    EXPECT_TRUE(v->bool_or("prompt", true));
}

TEST(Json, RoundTripsThroughDump)
{
    const std::string text =
        "{\"a\":[1,2.5,-3],\"b\":{\"c\":true,\"d\":null},"
        "\"e\":\"x\\\"y\\\\z\"}";
    const std::optional<json::Value> v = json::parse(text);
    ASSERT_TRUE(v.has_value());
    // dump() then parse() again: identical structure.
    const std::optional<json::Value> again =
        json::parse(json::dump(*v));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(json::dump(*v), json::dump(*again));
    // Integral numbers print without a decimal point.
    EXPECT_NE(json::dump(*v).find("\"a\":[1,2.5,-3]"),
              std::string::npos);
}

TEST(Json, RejectsMalformedDocuments)
{
    EXPECT_FALSE(json::parse("{").has_value());
    EXPECT_FALSE(json::parse("{\"a\":}").has_value());
    EXPECT_FALSE(json::parse("[1,]").has_value());
    EXPECT_FALSE(json::parse("{} trailing").has_value());
    EXPECT_FALSE(json::parse("\"unterminated").has_value());
    EXPECT_FALSE(json::parse("nul").has_value());
    // Depth bomb: past the recursion cap, not a crash.
    EXPECT_FALSE(
        json::parse(std::string(64, '[') + std::string(64, ']'))
            .has_value());
}

TEST(Json, ObjectWriterEscapes)
{
    json::ObjectWriter w;
    w.field("s", std::string("a\"b"))
        .field_int("n", -7)
        .field_bool("t", true)
        .field_raw("arr", "[1,2]");
    const std::optional<json::Value> v = json::parse(w.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("s")->string, "a\"b");
    EXPECT_EQ(v->number_or("n", 0.0), -7.0);
    EXPECT_TRUE(v->bool_or("t", false));
    EXPECT_EQ(v->find("arr")->array.size(), 2u);
}

// ---- Listener / Connection / Client over loopback. ----

TEST(Http, FixedResponseRoundTrip)
{
    Listener listener;
    ASSERT_TRUE(listener.bind_and_listen(0));
    ASSERT_GT(listener.port(), 0);

    std::thread serverThread([&listener] {
        const int fd = listener.accept_fd(5000);
        ASSERT_GE(fd, 0);
        Connection connection(fd);
        HttpRequest request;
        ASSERT_TRUE(connection.read_request(&request));
        EXPECT_EQ(request.method, "POST");
        EXPECT_EQ(request.target, "/echo");
        EXPECT_EQ(request.body, "hello");
        // Header keys arrive lower-cased.
        EXPECT_EQ(request.headers.count("content-length"), 1u);
        connection.write_response(200, "text/plain",
                                  "echo:" + request.body);
    });

    Client client;
    ASSERT_TRUE(client.connect(listener.port()));
    const std::optional<HttpResponse> response =
        client.request("POST", "/echo", "hello");
    serverThread.join();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, "echo:hello");
}

TEST(Http, ChunkedResponseIsReassembled)
{
    Listener listener;
    ASSERT_TRUE(listener.bind_and_listen(0));
    std::thread serverThread([&listener] {
        const int fd = listener.accept_fd(5000);
        ASSERT_GE(fd, 0);
        Connection connection(fd);
        HttpRequest request;
        ASSERT_TRUE(connection.read_request(&request));
        ASSERT_TRUE(connection.begin_chunked(200, "text/plain"));
        ASSERT_TRUE(connection.write_chunk("one "));
        ASSERT_TRUE(connection.write_chunk(""));  // No-op, not EOF.
        ASSERT_TRUE(connection.write_chunk("two three"));
        ASSERT_TRUE(connection.end_chunked());
    });

    Client client;
    ASSERT_TRUE(client.connect(listener.port()));
    const std::optional<HttpResponse> response =
        client.request("GET", "/stream");
    serverThread.join();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, "one two three");
}

TEST(Http, AcceptTimesOutAndClosedListenerRefuses)
{
    Listener listener;
    ASSERT_TRUE(listener.bind_and_listen(0));
    // No pending connection: the poll timeout bounds the wait (this
    // is what lets the accept loop observe a shutdown flag).
    EXPECT_LT(listener.accept_fd(10), 0);
    listener.close();
    listener.close();  // Idempotent.
    EXPECT_LT(listener.accept_fd(10), 0);  // Closed stays closed.
}

// ---- Frontend routes over a live functional server. ----

/** Frontend + functional server on an ephemeral port. */
class FrontendTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        config_ = model::llama2_7b().scaled_for_eval(2, 32, 64);
        transformer_ =
            std::make_shared<model::TransformerModel>(config_, 99);
        engine_ = std::make_unique<serve::Engine>(sim::make_mugi(64),
                                                  transformer_);
        serve::ServerConfig server_config;
        server_config.scheduler.prefill_chunk_tokens =
            units::Tokens(8);
        server_ = std::make_unique<serve::Server>(*engine_,
                                                  server_config);
        frontend_ = std::make_unique<Frontend>(*server_);
        ASSERT_TRUE(frontend_->bind(0));
        accept_thread_ =
            std::thread([this] { frontend_->run(); });
    }

    void
    TearDown() override
    {
        frontend_->stop();
        accept_thread_.join();
        // The non-negotiable exit condition of every route test.
        EXPECT_EQ(server_->stats().kv_bytes_in_use,
                  units::Bytes(0));
    }

    std::optional<HttpResponse>
    roundtrip(const std::string& method, const std::string& target,
              const std::string& body = "")
    {
        Client client;
        if (!client.connect(frontend_->port())) {
            return std::nullopt;
        }
        return client.request(method, target, body);
    }

    std::string
    prompt_json(std::size_t len, std::uint32_t seed,
                const std::string& extra) const
    {
        const std::vector<int> prompt =
            model::synthetic_tokens(len, config_.vocab, seed);
        std::ostringstream body;
        body << "{\"prompt\":[";
        for (std::size_t i = 0; i < prompt.size(); ++i) {
            body << (i ? "," : "") << prompt[i];
        }
        body << "]" << extra << "}";
        return body.str();
    }

    model::ModelConfig config_;
    std::shared_ptr<model::TransformerModel> transformer_;
    std::unique_ptr<serve::Engine> engine_;
    std::unique_ptr<serve::Server> server_;
    std::unique_ptr<Frontend> frontend_;
    std::thread accept_thread_;
};

TEST_F(FrontendTest, HealthzAndUnknownRoute)
{
    const std::optional<HttpResponse> health =
        roundtrip("GET", "/healthz");
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->status, 200);
    const std::optional<HttpResponse> missing =
        roundtrip("GET", "/nope");
    ASSERT_TRUE(missing.has_value());
    EXPECT_EQ(missing->status, 404);
}

TEST_F(FrontendTest, GenerateRejectsBadBodies)
{
    const std::optional<HttpResponse> bad =
        roundtrip("POST", "/v1/generate", "{not json");
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(bad->status, 400);
    // A functional engine cannot serve a promptless request.
    const std::optional<HttpResponse> empty =
        roundtrip("POST", "/v1/generate", "{}");
    ASSERT_TRUE(empty.has_value());
    EXPECT_EQ(empty->status, 400);
}

TEST_F(FrontendTest, NonStreamedGenerateReturnsTheFullBody)
{
    const std::optional<HttpResponse> response = roundtrip(
        "POST", "/v1/generate",
        prompt_json(10, 7,
                    ",\"max_new_tokens\":5,\"stream\":false"));
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, 200);
    const std::optional<json::Value> body =
        json::parse(response->body);
    ASSERT_TRUE(body.has_value());
    EXPECT_TRUE(body->bool_or("done", false));
    EXPECT_EQ(body->number_or("generated", 0.0), 5.0);
    EXPECT_EQ(body->find("reason")->string, "max_tokens");
    ASSERT_NE(body->find("tokens"), nullptr);
    EXPECT_EQ(body->find("tokens")->array.size(), 5u);
    ASSERT_NE(body->find("id"), nullptr);
    EXPECT_EQ(body->find("id")->string.size(), 36u);  // UUID shape.
}

TEST_F(FrontendTest, StreamedGenerateMatchesNonStreamed)
{
    const std::string spec =
        prompt_json(12, 8, ",\"max_new_tokens\":6");
    const std::optional<HttpResponse> streamed =
        roundtrip("POST", "/v1/generate", spec);
    ASSERT_TRUE(streamed.has_value());
    ASSERT_EQ(streamed->status, 200);

    std::vector<int> tokens;
    bool done = false;
    std::istringstream lines(streamed->body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) {
            continue;
        }
        const std::optional<json::Value> v = json::parse(line);
        ASSERT_TRUE(v.has_value()) << line;
        if (v->bool_or("done", false)) {
            done = true;
            EXPECT_EQ(v->number_or("generated", 0.0), 6.0);
        } else if (v->find("token") != nullptr) {
            tokens.push_back(
                static_cast<int>(v->number_or("token", -1.0)));
        }
    }
    EXPECT_TRUE(done);
    ASSERT_EQ(tokens.size(), 6u);

    const std::optional<HttpResponse> fixed = roundtrip(
        "POST", "/v1/generate",
        prompt_json(12, 8,
                    ",\"max_new_tokens\":6,\"stream\":false"));
    ASSERT_TRUE(fixed.has_value());
    const std::optional<json::Value> body =
        json::parse(fixed->body);
    ASSERT_TRUE(body.has_value());
    const json::Value* fixed_tokens = body->find("tokens");
    ASSERT_NE(fixed_tokens, nullptr);
    ASSERT_EQ(fixed_tokens->array.size(), tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        EXPECT_EQ(static_cast<int>(fixed_tokens->array[i].number),
                  tokens[i]);
    }
}

TEST_F(FrontendTest, MetricsExposeTheServingCounters)
{
    roundtrip("POST", "/v1/generate",
              prompt_json(8, 9,
                          ",\"max_new_tokens\":3,\"stream\":false"));
    const std::optional<HttpResponse> metrics =
        roundtrip("GET", "/metrics");
    ASSERT_TRUE(metrics.has_value());
    EXPECT_EQ(metrics->status, 200);
    EXPECT_NE(metrics->body.find("mugi_requests_finished 1"),
              std::string::npos);
    EXPECT_NE(metrics->body.find("mugi_kv_bytes_in_use"),
              std::string::npos);
    EXPECT_NE(metrics->body.find(
                  "mugi_ttft_seconds{quantile=\"0.99\"}"),
              std::string::npos);
}

TEST_F(FrontendTest, DeleteUnknownIdIs404)
{
    const std::optional<HttpResponse> response =
        roundtrip("DELETE", "/v1/generate/no-such-request");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 404);
}

/** Raw-socket client: incremental reads, so the test can act on the
 *  stream's first line while the response is still in flight. */
class RawStream {
  public:
    explicit RawStream(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons(port);
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~RawStream()
    {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }

    bool ok() const { return fd_ >= 0; }

    bool
    send(const std::string& data)
    {
        return fd_ >= 0 &&
               ::send(fd_, data.data(), data.size(), 0) ==
                   static_cast<ssize_t>(data.size());
    }

    /** Half-close: no more request bytes will ever arrive -- how a
     *  truncated body surfaces to the server as EOF. */
    void
    shutdown_write()
    {
        if (fd_ >= 0) {
            ::shutdown(fd_, SHUT_WR);
        }
    }

    /** Read until @p marker appears; everything read so far. */
    std::string
    read_until(const std::string& marker)
    {
        while (buffer_.find(marker) == std::string::npos) {
            char chunk[512];
            const ssize_t n =
                ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                break;
            }
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
        return buffer_;
    }

    std::string
    read_to_eof()
    {
        for (;;) {
            char chunk[512];
            const ssize_t n =
                ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                return buffer_;
            }
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

TEST_F(FrontendTest, DeleteCancelsAMidFlightStream)
{
    // A long generation, streamed over a raw socket so the uuid line
    // is visible while tokens are still being produced.
    const std::string body =
        prompt_json(10, 11, ",\"max_new_tokens\":512");
    std::ostringstream request;
    request << "POST /v1/generate HTTP/1.1\r\n"
            << "Host: localhost\r\nContent-Length: " << body.size()
            << "\r\nConnection: close\r\n\r\n"
            << body;
    RawStream stream(frontend_->port());
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.send(request.str()));

    // First NDJSON line carries the uuid.
    const std::string head = stream.read_until("\"}\n");
    const std::size_t id_at = head.find("{\"id\":\"");
    ASSERT_NE(id_at, std::string::npos) << head;
    const std::string uuid = head.substr(id_at + 7, 36);

    const std::optional<HttpResponse> cancelled = [&] {
        Client client;
        EXPECT_TRUE(client.connect(frontend_->port()));
        return client.request("DELETE", "/v1/generate/" + uuid);
    }();
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(cancelled->status, 202);

    // The stream must now terminate well short of 512 tokens, with
    // the finish line reporting the cancellation.
    const std::string full = stream.read_to_eof();
    EXPECT_NE(full.find("\"reason\":\"cancelled\""),
              std::string::npos);
    std::size_t deltas = 0;
    for (std::size_t at = full.find("\"index\":");
         at != std::string::npos;
         at = full.find("\"index\":", at + 1)) {
        ++deltas;
    }
    EXPECT_LT(deltas, 512u);

    // A second DELETE of the same uuid is a 404: already retired.
    Client again;
    ASSERT_TRUE(again.connect(frontend_->port()));
    const std::optional<HttpResponse> gone =
        again.request("DELETE", "/v1/generate/" + uuid);
    ASSERT_TRUE(gone.has_value());
    EXPECT_EQ(gone->status, 404);
    EXPECT_EQ(server_->stats().cancelled, 1u);
}

// ---- Malformed input: clean 4xx, nothing submitted. ----

TEST_F(FrontendTest, OversizedHeadersAreRejected)
{
    // A header block past the 64 KiB read limit: the parser must
    // refuse it bounded-memory, not buffer it forever.
    RawStream stream(frontend_->port());
    ASSERT_TRUE(stream.ok());
    std::ostringstream request;
    request << "POST /v1/generate HTTP/1.1\r\nHost: localhost\r\n"
            << "X-Padding: " << std::string(80 * 1024, 'x')
            << "\r\n\r\n";
    ASSERT_TRUE(stream.send(request.str()));
    // The refusal may race the kernel's reset of a connection with
    // unread bytes: a 400 or an immediate close both count -- what
    // must not happen is buffering forever or answering 200.
    const std::string response = stream.read_to_eof();
    EXPECT_TRUE(response.empty() ||
                response.find(" 400 ") != std::string::npos)
        << response.substr(0, 128);
}

TEST_F(FrontendTest, TruncatedBodyIsRejected)
{
    // Content-Length promises 400 bytes; the client half-closes
    // after 10.  The EOF must surface as a 400, not a hang.
    RawStream stream(frontend_->port());
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(
        stream.send("POST /v1/generate HTTP/1.1\r\n"
                    "Host: localhost\r\nContent-Length: 400\r\n"
                    "Connection: close\r\n\r\n{\"prompt\""));
    stream.shutdown_write();
    const std::string response = stream.read_to_eof();
    EXPECT_NE(response.find(" 400 "), std::string::npos)
        << response.substr(0, 128);
}

TEST_F(FrontendTest, GarbageRequestLineIsRejected)
{
    RawStream stream(frontend_->port());
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.send("\x80\xff\x01not-a-request-line\r\n\r\n"));
    stream.shutdown_write();
    const std::string response = stream.read_to_eof();
    EXPECT_NE(response.find(" 400 "), std::string::npos)
        << response.substr(0, 128);
}

TEST_F(FrontendTest, OverflowingNumbersAreRejected)
{
    // json.cc's strtod maps 1e999 to inf; every narrowing cast in
    // the API must range-check instead of invoking UB.
    for (const char* body :
         {"{\"prompt\":[1,2],\"max_new_tokens\":1e999}",
          "{\"prompt\":[1e999],\"max_new_tokens\":4}",
          "{\"prompt\":[1,2],\"max_new_tokens\":-3}",
          "{\"prompt\":[1,2],\"priority\":1e12}",
          "{\"prompt\":[1,2],\"deadline_s\":1e999}",
          "{\"prompt\":[1,2],\"admission_timeout_s\":1e999}"}) {
        const std::optional<HttpResponse> response =
            roundtrip("POST", "/v1/generate", body);
        ASSERT_TRUE(response.has_value()) << body;
        EXPECT_EQ(response->status, 400) << body;
    }
}

TEST_F(FrontendTest, InvalidUtf8BodyIsRejected)
{
    const std::optional<HttpResponse> response = roundtrip(
        "POST", "/v1/generate", "{\"prompt\":[\xc3\x28\xff]}");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
}

TEST_F(FrontendTest, WrongMethodOnKnownRoutesIs405)
{
    for (const auto& [method, target] :
         std::vector<std::pair<std::string, std::string>>{
             {"GET", "/v1/generate"},
             {"DELETE", "/metrics"},
             {"POST", "/healthz"},
             {"GET", "/v1/generate/some-uuid"}}) {
        const std::optional<HttpResponse> response =
            roundtrip(method, target);
        ASSERT_TRUE(response.has_value()) << method << " " << target;
        EXPECT_EQ(response->status, 405) << method << " " << target;
    }
}

// ---- Overload and fault surfaces over HTTP. ----

TEST_F(FrontendTest, InjectedSubmissionFaultYields429WithRetryAfter)
{
    support::FaultPlan plan;
    plan.seed = 77;
    plan.sites = {{"channel.push", 1.0, 1}};
    support::ScopedFaultPlan armed(plan);

    const std::optional<HttpResponse> response = roundtrip(
        "POST", "/v1/generate",
        prompt_json(8, 21, ",\"max_new_tokens\":3"));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 429);
    ASSERT_EQ(response->headers.count("retry-after"), 1u);
    const int retry_after =
        std::atoi(response->headers.at("retry-after").c_str());
    EXPECT_GE(retry_after, 1);
    EXPECT_LE(retry_after, 60);
    EXPECT_NE(response->body.find("\"error\":\"overloaded\""),
              std::string::npos);
    EXPECT_EQ(server_->stats().requests_shed, 1u);
    EXPECT_GE(server_->stats().faults_injected, 1u);

    // The fault cap is spent: the next submission serves normally.
    const std::optional<HttpResponse> ok = roundtrip(
        "POST", "/v1/generate",
        prompt_json(8, 21, ",\"max_new_tokens\":3,\"stream\":false"));
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->status, 200);
}

TEST_F(FrontendTest, MetricsExposeTheOverloadCounters)
{
    const std::optional<HttpResponse> metrics =
        roundtrip("GET", "/metrics");
    ASSERT_TRUE(metrics.has_value());
    EXPECT_EQ(metrics->status, 200);
    for (const char* counter :
         {"mugi_requests_shed", "mugi_admission_timeouts",
          "mugi_slow_client_cancels", "mugi_faults_injected"}) {
        EXPECT_NE(metrics->body.find(counter), std::string::npos)
            << counter;
    }
}

TEST_F(FrontendTest, HealthzReportsDrainingOnceShutdownBegins)
{
    server_->shutdown(serve::ShutdownMode::kDrain);
    const std::optional<HttpResponse> health =
        roundtrip("GET", "/healthz");
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->status, 503);
    EXPECT_NE(health->body.find("draining"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace mugi
