#include <gtest/gtest.h>

#include "arch/tech_model.h"
#include "sim/cost_model.h"
#include "sim/design.h"

namespace mugi {
namespace sim {
namespace {

TEST(Design, TableTwoFactories)
{
    const DesignConfig mugi = make_mugi(256);
    EXPECT_EQ(mugi.array_rows, 256u);
    EXPECT_EQ(mugi.array_cols, 8u);  // 2^3 columns (Sec. 2.1).
    EXPECT_EQ(mugi.nonlinear, NonlinearScheme::kVlp);

    const DesignConfig sa = make_systolic(16);
    EXPECT_EQ(sa.array_rows, 16u);
    EXPECT_EQ(sa.array_cols, 16u);

    const DesignConfig tensor = make_tensor();
    EXPECT_EQ(tensor.array_rows * tensor.array_cols *
                  tensor.array_depth,
              8u * 16u * 16u);
    EXPECT_EQ(tensor.sram_bytes, 1024u * 1024u);

    const DesignConfig carat = make_carat(128);
    EXPECT_NE(carat.nonlinear, NonlinearScheme::kVlp);
}

TEST(Design, PeakMacsPerCycle)
{
    EXPECT_DOUBLE_EQ(make_mugi(256).peak_macs_per_cycle(), 256.0);
    EXPECT_DOUBLE_EQ(make_systolic(16).peak_macs_per_cycle(), 256.0);
    EXPECT_DOUBLE_EQ(make_tensor().peak_macs_per_cycle(), 2048.0);
}

TEST(Design, NocReplication)
{
    const DesignConfig mesh = make_mugi(256).with_noc(4, 4);
    EXPECT_EQ(mesh.nodes(), 16u);
    EXPECT_NEAR(total_area_mm2(mesh),
                16.0 * node_area(mesh).total(), 1e-9);
}

TEST(CostModel, EightByEightNodeMatchesPaperAnchor)
{
    // Sec. 5.4: P&R of a single 8x8 Mugi node gives 0.056 mm^2
    // (array logic, excluding SRAM).
    const DesignConfig node8 = make_mugi(8);
    const AreaBreakdown a = node_area(node8);
    EXPECT_GT(a.array_total(), 0.056 * 0.6);
    EXPECT_LT(a.array_total(), 0.056 * 1.6);
}

TEST(CostModel, MugiScalesLinearlyBaselinesQuadratically)
{
    // Sec. 6.3.1 / Fig. 13: Mugi area grows linearly with H; SA/SD
    // grow quadratically with the dimension.
    const double mugi_128 = node_area(make_mugi(128)).array_total();
    const double mugi_256 = node_area(make_mugi(256)).array_total();
    EXPECT_NEAR(mugi_256 / mugi_128, 2.0, 0.25);

    const double sa_16 = node_area(make_systolic(16)).array_total();
    const double sa_32 = node_area(make_systolic(32)).array_total();
    EXPECT_NEAR(sa_32 / sa_16, 4.0, 0.8);
}

TEST(CostModel, CaratFifoPenalty)
{
    // Sec. 4.2: Mugi's broadcasting + output-buffer leaning cuts the
    // buffer area ~4.5x vs Carat at the same array size.
    const AreaBreakdown mugi = node_area(make_mugi(256));
    const AreaBreakdown carat = node_area(make_carat(256));
    EXPECT_GT(carat.fifo / mugi.fifo, 2.0);
    EXPECT_GT(carat.array_total(), mugi.array_total());
}

TEST(CostModel, MugiSharesArrayForNonlinear)
{
    // Mugi: no standalone nonlinear hardware; all baselines pay one.
    EXPECT_EQ(node_area(make_mugi(256)).nonlinear, 0.0);
    EXPECT_GT(node_area(make_systolic(16)).nonlinear, 0.0);
    EXPECT_GT(node_area(make_carat(256)).nonlinear, 0.0);
    // Mugi-L pays a big programmable-LUT block (Sec. 6.3.1).
    EXPECT_GT(node_area(make_mugi_l(256)).nonlinear,
              node_area(make_systolic(16)).nonlinear);
}

TEST(CostModel, FignaVariantsSlightlyLarger)
{
    EXPECT_GT(node_area(make_systolic(16, true)).pe,
              node_area(make_systolic(16)).pe);
    EXPECT_GT(node_area(make_simd(16, true)).pe,
              node_area(make_simd(16)).pe);
}

TEST(CostModel, GemmEnergyOrdering)
{
    // VLP is multiplier-free: far below MAC-based designs per MAC.
    const double mugi = gemm_energy_per_mac(make_mugi(256));
    const double carat = gemm_energy_per_mac(make_carat(256));
    const double sa = gemm_energy_per_mac(make_systolic(16));
    EXPECT_LT(mugi, sa / 2.0);
    EXPECT_GT(carat, mugi);  // FIFO shifting overhead.
    EXPECT_LT(carat, sa);
}

TEST(CostModel, NonlinearEnergyOrdering)
{
    // VLP < PWL < Taylor < precise per element; with the common SRAM
    // I/O removed, the VLP datapath is multiplier-free and sits far
    // below every MAC-based scheme.
    const double io = 4.0 * arch::SramMacro{64 * 1024, true}
                                .access_energy_per_byte();
    const double vlp =
        nonlinear_energy_per_element(make_mugi(128));
    const double pwl = nonlinear_energy_per_element(
        make_vector_array(16, NonlinearScheme::kPwl));
    const double taylor = nonlinear_energy_per_element(
        make_vector_array(16, NonlinearScheme::kTaylor));
    const double precise = nonlinear_energy_per_element(
        make_vector_array(16, NonlinearScheme::kPrecise));
    EXPECT_LT(vlp, pwl);
    EXPECT_LT(vlp - io, (pwl - io) / 2.5);
    EXPECT_LT(pwl, taylor);
    EXPECT_LT(taylor, precise);
}

TEST(CostModel, LeakagePositiveAndAreaProportional)
{
    const double small = node_leakage_mw(make_mugi(64));
    const double large = node_leakage_mw(make_mugi(512));
    EXPECT_GT(small, 0.0);
    EXPECT_GT(large, small);
}

TEST(CostModel, TableThreeAreaBands)
{
    // Absolute single-node areas within a generous band of Table 3.
    EXPECT_NEAR(node_area(make_mugi(128)).total(), 2.16, 0.6);
    EXPECT_NEAR(node_area(make_mugi(256)).total(), 3.10, 0.7);
    EXPECT_NEAR(node_area(make_carat(256)).total(), 3.84, 0.9);
    EXPECT_NEAR(node_area(make_systolic(16)).total(), 2.58, 0.7);
    EXPECT_NEAR(node_area(make_tensor()).total(), 38.75, 9.0);
}

}  // namespace
}  // namespace sim
}  // namespace mugi
