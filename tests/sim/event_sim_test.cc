#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include "sim/performance_model.h"

namespace mugi {
namespace sim {
namespace {

TEST(EventSim, MakespanCloseToAnalyticRoofline)
{
    // With double-buffered weight streaming, the event timeline must
    // land within a small factor of the analytic per-op
    // max(compute, memory) sum.
    const model::Workload w =
        model::build_decode_workload(model::llama2_7b(), 8, 2048);
    for (const DesignConfig& d :
         {make_mugi(256), make_systolic(16), make_tensor()}) {
        const EventSimResult ev = simulate(d, w);
        const PerfReport an = run_workload(d, w);
        EXPECT_GT(ev.makespan_cycles, an.total_cycles * 0.6)
            << d.name;
        EXPECT_LT(ev.makespan_cycles, an.total_cycles * 1.4)
            << d.name;
    }
}

TEST(EventSim, TimelineIsWellFormed)
{
    const model::Workload w =
        model::build_decode_workload(model::llama2_7b(), 8, 1024);
    const EventSimResult ev = simulate(make_mugi(128), w);
    ASSERT_FALSE(ev.timeline.empty());
    double prev_compute_end = 0.0;
    double prev_memory_end = 0.0;
    for (const ScheduledOp& op : ev.timeline) {
        EXPECT_LE(op.start_cycle, op.end_cycle) << op.name;
        // Intervals on the same resource never overlap.
        if (op.on_memory) {
            EXPECT_GE(op.start_cycle, prev_memory_end - 1e-9)
                << op.name;
            prev_memory_end = op.end_cycle;
        } else {
            EXPECT_GE(op.start_cycle, prev_compute_end - 1e-9)
                << op.name;
            prev_compute_end = op.end_cycle;
        }
        EXPECT_LE(op.end_cycle, ev.makespan_cycles + 1e-9) << op.name;
    }
}

TEST(EventSim, BusyCyclesNeverExceedMakespan)
{
    const model::Workload w =
        model::build_decode_workload(model::llama2_70b(), 8, 4096);
    for (const DesignConfig& d :
         {make_mugi(256), make_systolic(16), make_simd(16)}) {
        const EventSimResult ev = simulate(d, w);
        EXPECT_LE(ev.compute_busy_cycles,
                  ev.makespan_cycles + 1e-6)
            << d.name;
        EXPECT_LE(ev.memory_busy_cycles, ev.makespan_cycles + 1e-6)
            << d.name;
        EXPECT_GT(ev.compute_utilization(), 0.0) << d.name;
        EXPECT_LE(ev.compute_utilization(), 1.0) << d.name;
    }
}

TEST(EventSim, CacheResidentOpsSkipDram)
{
    // Attention GEMMs read the on-chip-staged KV stream rather than
    // re-fetching weights; only DRAM-sourced ops occupy the channel.
    model::Workload w;
    w.name = "attn-only";
    w.batch = 8;
    model::GemmOp attn;
    attn.name = "attn";
    attn.cls = model::OpClass::kAttention;
    attn.m = 64;
    attn.n = 4096;
    attn.k = 128;
    attn.weights_from_dram = false;
    w.gemms.push_back(attn);
    const EventSimResult ev = simulate(make_mugi(256), w);
    EXPECT_EQ(ev.memory_busy_cycles, 0.0);
    EXPECT_GT(ev.compute_busy_cycles, 0.0);
}

TEST(EventSim, MultiNodeShrinksMakespan)
{
    const model::Workload w =
        model::build_decode_workload(model::llama2_70b(), 8, 4096);
    const EventSimResult one = simulate(make_mugi(256), w);
    const EventSimResult mesh =
        simulate(make_mugi(256).with_noc(4, 4), w);
    EXPECT_NEAR(one.makespan_cycles / mesh.makespan_cycles, 16.0,
                1.0);
}

}  // namespace
}  // namespace sim
}  // namespace mugi
