/**
 * @file
 * End-to-end anchors against the paper's headline numbers (Sec. 6,
 * Table 3).  These are deliberately band tests: the reproduction's
 * substrate is a calibrated analytic simulator, so we assert the
 * *shape* -- who wins and by roughly what factor -- rather than
 * exact values (see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "model/workload.h"
#include "sim/performance_model.h"

namespace mugi {
namespace sim {
namespace {

class Table3 : public ::testing::Test {
  protected:
    static PerfReport
    run(const DesignConfig& d)
    {
        const model::Workload w = model::build_decode_workload(
            model::llama2_70b(), 8, 4096);
        return run_workload(d, w);
    }
};

TEST_F(Table3, MugiVsSystolicHeadline)
{
    // Paper: Mugi(256) vs SA(16): 2.07x throughput, 3.11x energy
    // efficiency, 1.50x power efficiency.
    const PerfReport mugi = run(make_mugi(256));
    const PerfReport sa = run(make_systolic(16));
    const double thr = mugi.throughput_tokens_per_s /
                       sa.throughput_tokens_per_s;
    const double ee = mugi.energy_efficiency / sa.energy_efficiency;
    const double pe = mugi.power_efficiency / sa.power_efficiency;
    EXPECT_NEAR(thr, 2.07, 0.35);
    EXPECT_NEAR(ee, 3.11, 0.80);
    EXPECT_NEAR(pe, 1.50, 0.40);
}

TEST_F(Table3, AbsoluteThroughputBands)
{
    EXPECT_NEAR(run(make_mugi(128)).throughput_tokens_per_s, 0.71,
                0.15);
    EXPECT_NEAR(run(make_mugi(256)).throughput_tokens_per_s, 1.39,
                0.25);
    EXPECT_NEAR(run(make_systolic(16)).throughput_tokens_per_s, 0.67,
                0.15);
    EXPECT_NEAR(run(make_tensor()).throughput_tokens_per_s, 10.06,
                2.50);
}

TEST_F(Table3, CaratCloseButBehindMugi)
{
    // Table 3: Carat matches Mugi's throughput (same VLP mapping
    // after modification) but trails on energy/power efficiency.
    const PerfReport mugi = run(make_mugi(256));
    const PerfReport carat = run(make_carat(256));
    EXPECT_NEAR(carat.throughput_tokens_per_s /
                    mugi.throughput_tokens_per_s,
                1.0, 0.06);
    EXPECT_LT(carat.energy_efficiency, mugi.energy_efficiency);
    EXPECT_LT(carat.power_efficiency, mugi.power_efficiency);
}

TEST_F(Table3, FignaMatchesBaseThroughput)
{
    const PerfReport sa = run(make_systolic(16));
    const PerfReport saf = run(make_systolic(16, true));
    EXPECT_NEAR(saf.throughput_tokens_per_s /
                    sa.throughput_tokens_per_s,
                1.0, 1e-9);
}

TEST_F(Table3, NocBeatsScaledUpArrays)
{
    // Sec. 6.3.3: NoC-based implementations clearly outperform
    // scaled-up systolic arrays (severe under-utilization at small
    // batch).
    const PerfReport mesh = run(make_systolic(16).with_noc(4, 4));
    const PerfReport scaled = run(make_systolic(64));
    EXPECT_GT(mesh.throughput_tokens_per_s,
              scaled.throughput_tokens_per_s * 2.0);
}

TEST_F(Table3, NocMugiHeadline)
{
    // Paper: 4x4 Mugi(256) = 22.19 tokens/s.
    const PerfReport mesh = run(make_mugi(256).with_noc(4, 4));
    EXPECT_NEAR(mesh.throughput_tokens_per_s, 22.19, 4.0);
    // And it beats the 4x4 SA(16) mesh by ~2x.
    const PerfReport sa_mesh = run(make_systolic(16).with_noc(4, 4));
    EXPECT_NEAR(mesh.throughput_tokens_per_s /
                    sa_mesh.throughput_tokens_per_s,
                22.19 / 10.74, 0.4);
}

TEST(Figure11Anchors, NonlinearHeadline)
{
    // Sec. 6.1.2: Mugi at 45x normalized throughput vs VA(16); 5x vs
    // PWL; ~10x vs Taylor.  Energy efficiency (throughput^2/power)
    // 481x (softmax) / 668x (SiLU) vs the precise vector array.
    model::NonlinearWork softmax;
    softmax.name = "softmax";
    softmax.op = nonlinear::NonlinearOp::kExp;
    softmax.is_softmax = true;
    softmax.row_length = 4096;
    softmax.elements = 64ull << 20;

    const NonlinearPerf mugi =
        run_nonlinear_only(make_mugi(128), softmax);
    const NonlinearPerf va = run_nonlinear_only(
        make_vector_array(16, NonlinearScheme::kPrecise), softmax);
    const NonlinearPerf pwl = run_nonlinear_only(
        make_vector_array(16, NonlinearScheme::kPwl), softmax);
    const NonlinearPerf taylor = run_nonlinear_only(
        make_vector_array(16, NonlinearScheme::kTaylor), softmax);

    const double thr = mugi.elements_per_s / va.elements_per_s;
    EXPECT_NEAR(thr, 45.0, 9.0);
    EXPECT_NEAR(mugi.elements_per_s / pwl.elements_per_s, 5.0, 1.5);
    EXPECT_NEAR(mugi.elements_per_s / taylor.elements_per_s, 10.02,
                2.5);
    // Energy-efficiency ratio in the hundreds (paper: 481x).
    const double ee = mugi.energy_efficiency / va.energy_efficiency;
    EXPECT_GT(ee, 150.0);
    EXPECT_LT(ee, 1500.0);
}

}  // namespace
}  // namespace sim
}  // namespace mugi
