#include "sim/performance_model.h"

#include <random>

#include <gtest/gtest.h>

#include "vlp/vlp_gemm.h"

namespace mugi {
namespace sim {
namespace {

model::GemmOp
simple_gemm(std::size_t m, std::size_t n, std::size_t k,
            bool from_dram = true)
{
    model::GemmOp op;
    op.name = "gemm";
    op.m = m;
    op.n = n;
    op.k = k;
    op.count = 1;
    op.weights_from_dram = from_dram;
    return op;
}

TEST(PerfModel, MugiCyclesMatchCycleAccurateArray)
{
    // The analytic VLP GEMM cycle formula must equal the simulated
    // temporal-array cycle count exactly.
    const DesignConfig mugi = make_mugi(32);
    const struct {
        std::size_t m, n, k;
    } cases[] = {{8, 64, 16}, {5, 33, 7}, {16, 32, 4}, {8, 256, 64}};
    for (const auto& c : cases) {
        const OpCost cost = gemm_cost(mugi, simple_gemm(c.m, c.n, c.k));
        EXPECT_EQ(cost.compute_cycles,
                  static_cast<double>(vlp::vlp_gemm_mugi_cycles(
                      c.n, c.m, c.k, 32, 8)))
            << c.m << "x" << c.n << "x" << c.k;
    }
}

TEST(PerfModel, MugiPeaksAtBatchEight)
{
    // Sec. 6.3.1: Mugi's best throughput arrives at batch 8 (columns
    // full); larger batches give no per-token gain.
    const DesignConfig mugi = make_mugi(256);
    const double c4 =
        gemm_cost(mugi, simple_gemm(4, 4096, 4096)).compute_cycles;
    const double c8 =
        gemm_cost(mugi, simple_gemm(8, 4096, 4096)).compute_cycles;
    const double c16 =
        gemm_cost(mugi, simple_gemm(16, 4096, 4096)).compute_cycles;
    EXPECT_EQ(c4, c8);        // 4 rows waste half the columns.
    EXPECT_EQ(c16, 2.0 * c8); // Two full column loads.
}

TEST(PerfModel, SystolicSmallBatchUnderutilization)
{
    // SA throughput per MAC degrades when m < A, and worsens as the
    // array grows (Sec. 6.2).
    const model::GemmOp op = simple_gemm(8, 4096, 4096);
    const double sa16 =
        gemm_cost(make_systolic(16), op).compute_cycles;
    const double sa64 =
        gemm_cost(make_systolic(64), op).compute_cycles;
    const double macs = static_cast<double>(op.macs());
    const double util16 = macs / (sa16 * 256.0);
    const double util64 = macs / (sa64 * 4096.0);
    EXPECT_LT(util16, 0.55);
    EXPECT_LT(util64, util16);
}

TEST(PerfModel, MemoryBoundOpsHitTheRoofline)
{
    // A single VLP node consumes INT4 weights at H/16 bytes/cycle,
    // far below the 640 B/cycle HBM roofline (the paper's "more
    // compute bounded" observation); only a very tall array flips an
    // op to memory-bound.
    model::GemmOp op = simple_gemm(8, 65536, 4096);
    const OpCost small = gemm_cost(make_mugi(256), op);
    EXPECT_GT(small.compute_cycles, small.memory_cycles);
    EXPECT_EQ(small.cycles, small.compute_cycles);

    const OpCost tall = gemm_cost(make_mugi(16384), op);
    EXPECT_GT(tall.memory_cycles, tall.compute_cycles);
    EXPECT_EQ(tall.cycles, tall.memory_cycles);
}

TEST(PerfModel, NonlinearVlpVsVectorArrays)
{
    // Fig. 11: Mugi(128) ~44-45x a precise 16-lane VA; ~5x PWL; ~10x
    // Taylor (throughput, iso-normalization).
    model::NonlinearWork work;
    work.op = nonlinear::NonlinearOp::kExp;
    work.elements = 1 << 20;
    const double mugi =
        nonlinear_cost(make_mugi(128), work).compute_cycles;
    const double va_fp = nonlinear_cost(
        make_vector_array(16, NonlinearScheme::kPrecise), work)
        .compute_cycles;
    const double va_pwl =
        nonlinear_cost(make_vector_array(16, NonlinearScheme::kPwl),
                       work)
            .compute_cycles;
    const double va_taylor = nonlinear_cost(
        make_vector_array(16, NonlinearScheme::kTaylor), work)
        .compute_cycles;
    EXPECT_NEAR(va_fp / mugi, 44.0, 2.0);
    EXPECT_NEAR(va_pwl / mugi, 5.0, 0.5);
    EXPECT_NEAR(va_taylor / mugi, 10.0, 1.0);
}

TEST(PerfModel, SoftmaxNormalizationIsLatencyHiddenButCostsEnergy)
{
    model::NonlinearWork exp_only;
    exp_only.op = nonlinear::NonlinearOp::kExp;
    exp_only.elements = 1 << 20;
    model::NonlinearWork softmax = exp_only;
    softmax.is_softmax = true;
    softmax.row_length = 128;
    const DesignConfig mugi = make_mugi(128);
    const OpCost exp_cost = nonlinear_cost(mugi, exp_only);
    const OpCost sm_cost = nonlinear_cost(mugi, softmax);
    // The vector array scales outputs as they exit the oFIFO
    // (Sec. 5.2.1): only a per-row drain of extra latency...
    EXPECT_LT(sm_cost.compute_cycles, exp_cost.compute_cycles * 1.01);
    // ...but the sum + reciprocal-multiply still costs energy.
    EXPECT_GT(sm_cost.dynamic_energy_pj, exp_cost.dynamic_energy_pj);
}

TEST(PerfModel, WorkloadReportConsistency)
{
    const DesignConfig mugi = make_mugi(256);
    const model::Workload w =
        model::build_decode_workload(model::llama2_7b(), 8, 2048);
    const PerfReport report = run_workload(mugi, w);
    EXPECT_GT(report.total_cycles, 0.0);
    EXPECT_GT(report.throughput_tokens_per_s, 0.0);
    EXPECT_GT(report.power_w, 0.0);
    // Identities between the reported metrics.
    EXPECT_NEAR(report.energy_efficiency,
                report.throughput_tokens_per_s *
                    report.power_efficiency,
                1e-6 * report.energy_efficiency);
    EXPECT_NEAR(report.power_efficiency,
                report.throughput_tokens_per_s / report.power_w,
                1e-6 * report.power_efficiency);
    // Breakdown sums to the total.
    double sum = 0.0;
    for (const auto& [cls, cycles] : report.cycles_by_class) {
        sum += cycles;
    }
    EXPECT_NEAR(sum, report.total_cycles, 1e-6 * report.total_cycles);
}

TEST(PerfModel, NocScalesNearLinearly)
{
    // Table 3: 4x4 Mugi(256) ~16x the single node (compute-bound,
    // memory supplies the minimum bandwidth, Sec. 5.2.3).
    const model::Workload w =
        model::build_decode_workload(model::llama2_70b(), 8, 4096);
    const PerfReport one = run_workload(make_mugi(256), w);
    const PerfReport mesh =
        run_workload(make_mugi(256).with_noc(4, 4), w);
    EXPECT_NEAR(mesh.throughput_tokens_per_s /
                    one.throughput_tokens_per_s,
                16.0, 0.5);
}

TEST(PerfModel, GqaImprovesMugiAttentionThroughput)
{
    // Sec. 6.2: GQA's grouped queries fill Mugi's 8 columns.  Compare
    // 70B attention (group 8) against a hypothetical MHA 70B.
    model::ModelConfig gqa = model::llama2_70b();
    model::ModelConfig mha = gqa;
    mha.num_kv_heads = mha.num_heads;  // Disable GQA.
    const DesignConfig mugi = make_mugi(256);
    const auto attention_cycles = [&](const model::ModelConfig& m) {
        const model::Workload w =
            model::build_decode_workload(m, 1, 4096);
        const PerfReport r = run_workload(mugi, w);
        return r.cycles_by_class.at(model::OpClass::kAttention);
    };
    // Same attention MACs, but the MHA mapping leaves 7/8 columns
    // idle at batch 1.
    EXPECT_NEAR(attention_cycles(mha) / attention_cycles(gqa), 8.0,
                0.5);
}

TEST(PerfModel, KvFootprintDiscountsASharedPrefix)
{
    // kv_footprint(..., shared_positions) is the admission-side view
    // of a prefix-cache hit: only the fully-shared leading blocks
    // leave the paged accounting (their storage belongs to the
    // donor), and the contiguous accounting drops every shared
    // token.
    const model::ModelConfig config = model::llama2_7b();
    const std::size_t B = 16;
    const KvFootprint full = kv_footprint(
        config, units::Positions(47), quant::KvPrecision::kInt4,
        units::Tokens(B));
    const KvFootprint tail = kv_footprint(
        config, units::Positions(47), quant::KvPrecision::kInt4,
        units::Tokens(B), units::Positions(32));
    EXPECT_EQ(full.blocks, units::Blocks(3));
    // Two of three blocks shared.
    EXPECT_EQ(tail.blocks, units::Blocks(1));
    EXPECT_EQ(full.paged_bytes, tail.paged_bytes * 3);
    const units::Bytes per_position =
        quant::KvCache::bytes_per_position(
            config.num_kv_heads, config.head_dim(),
            quant::KvPrecision::kInt4);
    EXPECT_EQ(tail.contiguous_bytes,
              per_position * (config.num_layers * (47 - 32)));
    // shared_positions == 0 is exactly the old accounting.
    const KvFootprint same = kv_footprint(
        config, units::Positions(47), quant::KvPrecision::kInt4,
        units::Tokens(B), units::Positions(0));
    EXPECT_EQ(same.paged_bytes, full.paged_bytes);
    EXPECT_EQ(same.contiguous_bytes, full.contiguous_bytes);
}

TEST(PerfModel, EnergyByClassCoversAllClasses)
{
    const model::Workload w =
        model::build_decode_workload(model::llama2_7b(), 8, 1024);
    const PerfReport r = run_workload(make_mugi(128), w);
    EXPECT_GT(r.energy_by_class.at(model::OpClass::kProjection), 0.0);
    EXPECT_GT(r.energy_by_class.at(model::OpClass::kAttention), 0.0);
    EXPECT_GT(r.energy_by_class.at(model::OpClass::kFfn), 0.0);
    EXPECT_GT(r.energy_by_class.at(model::OpClass::kNonlinear), 0.0);
}

}  // namespace
}  // namespace sim
}  // namespace mugi
