/**
 * @file
 * Contract of the deterministic fault injector: inert until armed,
 * seeded schedules reproduce exactly, per-site rate/cap accounting
 * holds, and a wired production seam (BlockPool's try_allocate /
 * try_reserve) actually fails when its site fires -- then recovers
 * the moment the plan is disarmed.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "quant/block_allocator.h"
#include "support/fault.h"

namespace mugi {
namespace support {
namespace {

/** The firing pattern of @p site over @p n fresh evaluations. */
std::vector<bool>
pattern(const char* site, int n)
{
    std::vector<bool> fired;
    for (int i = 0; i < n; ++i) {
        fired.push_back(FaultInjector::instance().should_fire(site));
    }
    return fired;
}

TEST(FaultInjector, DisarmedIsInert)
{
    FaultInjector& injector = FaultInjector::instance();
    ASSERT_FALSE(injector.armed());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(injector.should_fire("block_pool.allocate"));
    }
    // Disarmed evaluations are not even counted.
    EXPECT_EQ(injector.evaluations(), 0u);
    EXPECT_EQ(injector.fires(), 0u);
}

TEST(FaultInjector, RateOneFiresEveryTimeUpToTheCap)
{
    FaultPlan plan;
    plan.seed = 17;
    plan.sites = {{"test.always", 1.0, 3}};
    ScopedFaultPlan armed(plan);

    const std::vector<bool> fired = pattern("test.always", 6);
    EXPECT_EQ(fired,
              (std::vector<bool>{true, true, true, false, false,
                                 false}));
    EXPECT_EQ(FaultInjector::instance().fires("test.always"), 3u);
    EXPECT_EQ(FaultInjector::instance().evaluations(), 6u);
}

TEST(FaultInjector, SameSeedReproducesTheExactSchedule)
{
    FaultPlan plan;
    plan.seed = 2024;
    plan.sites = {{"test.flaky", 0.3, 0}};

    FaultInjector::instance().arm(plan);
    const std::vector<bool> first = pattern("test.flaky", 100);
    // Re-arming resets the per-site counters: the schedule replays.
    FaultInjector::instance().arm(plan);
    const std::vector<bool> second = pattern("test.flaky", 100);
    FaultInjector::instance().disarm();

    EXPECT_EQ(first, second);
    // A 0.3 rate over 100 draws fires some but not all of the time.
    const std::size_t fires = static_cast<std::size_t>(
        std::count(first.begin(), first.end(), true));
    EXPECT_GT(fires, 0u);
    EXPECT_LT(fires, 100u);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultPlan a;
    a.seed = 1;
    a.sites = {{"test.flaky", 0.5, 0}};
    FaultPlan b = a;
    b.seed = 2;

    FaultInjector::instance().arm(a);
    const std::vector<bool> first = pattern("test.flaky", 64);
    FaultInjector::instance().arm(b);
    const std::vector<bool> second = pattern("test.flaky", 64);
    FaultInjector::instance().disarm();
    EXPECT_NE(first, second);
}

TEST(FaultInjector, SitesKeepIndependentCounters)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.sites = {{"test.a", 1.0, 2}, {"test.b", 1.0, 5}};
    ScopedFaultPlan armed(plan);

    FaultInjector& injector = FaultInjector::instance();
    for (int i = 0; i < 4; ++i) {
        injector.should_fire("test.a");
        injector.should_fire("test.b");
    }
    EXPECT_EQ(injector.fires("test.a"), 2u);  // Capped.
    EXPECT_EQ(injector.fires("test.b"), 4u);
    EXPECT_EQ(injector.fires(), 6u);
    EXPECT_EQ(injector.evaluations(), 8u);
    // A site the plan never named counts nothing.
    EXPECT_FALSE(injector.should_fire("test.unlisted"));
    EXPECT_EQ(injector.evaluations(), 8u);
}

TEST(FaultInjector, DisarmResetsEverything)
{
    {
        FaultPlan plan;
        plan.seed = 9;
        plan.sites = {{"test.once", 1.0, 1}};
        ScopedFaultPlan armed(plan);
        EXPECT_TRUE(
            FaultInjector::instance().should_fire("test.once"));
    }
    FaultInjector& injector = FaultInjector::instance();
    EXPECT_FALSE(injector.armed());
    EXPECT_EQ(injector.fires(), 0u);
    EXPECT_EQ(injector.evaluations(), 0u);
    EXPECT_FALSE(injector.should_fire("test.once"));
}

TEST(FaultInjector, BlockPoolAllocationSeamFailsAndRecovers)
{
    quant::BlockPool pool(units::Bytes(1 << 20));
    {
        FaultPlan plan;
        plan.seed = 3;
        plan.sites = {{"block_pool.allocate", 1.0, 2}};
        ScopedFaultPlan armed(plan);

        // Both enforcement paths refuse while the site fires...
        EXPECT_EQ(pool.try_allocate(units::Bytes(256)),
                  quant::kInvalidBlock);
        EXPECT_FALSE(pool.try_reserve(units::Bytes(256)));
        EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));

        // ...and succeed again once the cap is exhausted.
        const quant::BlockId id =
            pool.try_allocate(units::Bytes(256));
        ASSERT_NE(id, quant::kInvalidBlock);
        pool.release(id);
    }
    // Disarmed: the seam is gone entirely.
    const quant::BlockId id = pool.try_allocate(units::Bytes(256));
    ASSERT_NE(id, quant::kInvalidBlock);
    pool.release(id);
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(pool.check_invariants(), "");
}

}  // namespace
}  // namespace support
}  // namespace mugi
