/**
 * @file
 * Contract of support/units.h, the strong quantity types under the
 * serving stack's accounting: named conversion helpers at block
 * boundaries, INT4 nibble rounding through KvCache's per-position
 * geometry, overflow-guarded multiplication, opaque-id identity and
 * hashing, and the stream formatting the deterministic examples
 * depend on.  The negative half of the contract (cross-unit
 * arithmetic must not compile) lives in tests/units/compile_fail/.
 */

#include "support/units.h"

#include <cstdint>
#include <limits>
#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "quant/kv_cache.h"

namespace mugi {
namespace {

// The conversion helpers are constexpr: block geometry resolved at
// compile time stays resolved at compile time.
static_assert(units::blocks_for(units::Tokens(17), units::Tokens(16)) ==
              units::Blocks(2));
static_assert(units::full_blocks_for(units::Tokens(17),
                                     units::Tokens(16)) ==
              units::Blocks(1));
static_assert(units::bytes_for(units::Tokens(3), units::Bytes(8)) ==
              units::Bytes(24));

TEST(Units, BlocksForCeilsAtBlockBoundaries)
{
    const units::Tokens block(16);

    // Zero tokens need zero blocks.
    EXPECT_EQ(units::blocks_for(units::Tokens(0), block),
              units::Blocks(0));
    // One token already opens a block.
    EXPECT_EQ(units::blocks_for(units::Tokens(1), block),
              units::Blocks(1));
    // Exactly one block's worth fills exactly one block...
    EXPECT_EQ(units::blocks_for(units::Tokens(16), block),
              units::Blocks(1));
    // ...and one past the boundary opens the next.
    EXPECT_EQ(units::blocks_for(units::Tokens(17), block),
              units::Blocks(2));
    EXPECT_EQ(units::blocks_for(units::Tokens(32), block),
              units::Blocks(2));
}

TEST(Units, FullBlocksForFloorsAtBlockBoundaries)
{
    const units::Tokens block(16);

    // The prefix-sharing rule: only *whole* blocks are shareable, so
    // a partial block contributes nothing.
    EXPECT_EQ(units::full_blocks_for(units::Tokens(0), block),
              units::Blocks(0));
    EXPECT_EQ(units::full_blocks_for(units::Tokens(15), block),
              units::Blocks(0));
    EXPECT_EQ(units::full_blocks_for(units::Tokens(16), block),
              units::Blocks(1));
    EXPECT_EQ(units::full_blocks_for(units::Tokens(17), block),
              units::Blocks(1));
}

TEST(Units, TokensForInvertsBlockCoverage)
{
    const units::Tokens block(16);

    EXPECT_EQ(units::tokens_for(units::Blocks(0), block),
              units::Tokens(0));
    EXPECT_EQ(units::tokens_for(units::Blocks(3), block),
              units::Tokens(48));
    // Ceil coverage always spans the demand it was computed from.
    for (std::size_t t : {std::size_t{0}, std::size_t{1},
                          std::size_t{15}, std::size_t{16},
                          std::size_t{17}, std::size_t{1000}}) {
        const units::Tokens tokens(t);
        EXPECT_GE(units::tokens_for(units::blocks_for(tokens, block),
                                    block),
                  tokens);
    }
}

TEST(Units, BytesForScalesTokensAndBlocks)
{
    EXPECT_EQ(units::bytes_for(units::Tokens(0), units::Bytes(128)),
              units::Bytes(0));
    EXPECT_EQ(units::bytes_for(units::Tokens(1), units::Bytes(128)),
              units::Bytes(128));
    EXPECT_EQ(units::bytes_for(units::Blocks(4), units::Bytes(256)),
              units::Bytes(1024));
}

TEST(Units, PositionsAndTokensConvertOneToOne)
{
    EXPECT_EQ(units::positions_for(units::Tokens(37)),
              units::Positions(37));
    EXPECT_EQ(units::tokens_for(units::Positions(37)),
              units::Tokens(37));
}

TEST(Units, Int4NibblePackingRoundsOddHeadDimsUp)
{
    using quant::KvCache;
    using quant::KvPrecision;

    // Even head_dim: K+V per head is head_dim/2 packed nibble bytes
    // plus a 2-byte BF16 scale.
    EXPECT_EQ(KvCache::bytes_per_position(2, 4, KvPrecision::kInt4),
              units::Bytes(2 * 2 * (4 / 2 + 2)));
    // Odd head_dim: the trailing nibble still costs a whole byte, so
    // head_dim 5 packs like head_dim 6.
    EXPECT_EQ(KvCache::bytes_per_position(2, 5, KvPrecision::kInt4),
              KvCache::bytes_per_position(2, 6, KvPrecision::kInt4));
    EXPECT_EQ(KvCache::bytes_per_position(2, 5, KvPrecision::kInt4),
              units::Bytes(2 * 2 * (3 + 2)));

    // Float pays full fp32 vectors and beats INT4 by ~8x at large
    // head_dim (4 bytes vs half a byte per element).
    const units::Bytes fp =
        KvCache::bytes_per_position(8, 64, KvPrecision::kFloat);
    const units::Bytes q4 =
        KvCache::bytes_per_position(8, 64, KvPrecision::kInt4);
    EXPECT_EQ(fp, units::Bytes(2 * 8 * 64 * sizeof(float)));
    EXPECT_EQ(q4, units::Bytes(2 * 8 * (64 / 2 + 2)));
    EXPECT_GT(fp, q4);
}

TEST(UnitsDeathTest, OverflowingConversionsAbortInsteadOfWrapping)
{
    constexpr std::size_t kHuge =
        std::numeric_limits<std::size_t>::max() / 2;

    // A wrapped byte budget would admit unbounded requests; the
    // conversion helpers abort in every build type instead.
    EXPECT_DEATH(
        units::bytes_for(units::Tokens(kHuge), units::Bytes(3)),
        "overflow");
    EXPECT_DEATH(units::Bytes(kHuge) * 3, "overflow");
    EXPECT_DEATH(
        units::tokens_for(units::Blocks(kHuge), units::Tokens(4)),
        "overflow");
}

TEST(Units, SameUnitArithmeticKeepsRawSemantics)
{
    units::Bytes a(300);
    const units::Bytes b(200);

    EXPECT_EQ(a + b, units::Bytes(500));
    EXPECT_EQ(a - b, units::Bytes(100));
    a += b;
    EXPECT_EQ(a, units::Bytes(500));
    a -= units::Bytes(100);
    EXPECT_EQ(a, units::Bytes(400));

    // Scalar scale/divide stay in-unit; a same-unit ratio is
    // dimensionless; remainder stays in-unit.
    EXPECT_EQ(a * 2, units::Bytes(800));
    EXPECT_EQ(a / 4, units::Bytes(100));
    EXPECT_EQ(a / b, std::size_t{2});
    EXPECT_EQ(units::Bytes(450) % b, units::Bytes(50));

    // Comparison is ordinary integer order within the unit.
    EXPECT_LT(b, a);
    EXPECT_GE(a, units::Bytes(400));
}

TEST(Units, OpaqueIdsCompareAndHashWithinTheirKind)
{
    const units::SessionId s1(7);
    const units::SessionId s2(7);
    const units::SessionId s3(8);
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, s3);
    EXPECT_LT(s1, s3);

    EXPECT_EQ(std::hash<units::SessionId>{}(s1),
              std::hash<units::SessionId>{}(s2));

    std::unordered_set<units::BlockId> live;
    live.insert(units::BlockId(1));
    live.insert(units::BlockId(2));
    live.insert(units::BlockId(1));
    EXPECT_EQ(live.size(), 2u);
    EXPECT_TRUE(live.count(units::BlockId(2)));
    EXPECT_FALSE(live.count(units::BlockId(3)));
}

TEST(Units, StreamOutputMatchesRawIntegers)
{
    // The deterministic examples print stats fields directly; the
    // strong types must format exactly as the size_t they replaced.
    std::ostringstream os;
    os << units::Tokens(42) << " " << units::Bytes(0) << " "
       << units::SessionId(9) << " " << units::BlockId(3);
    EXPECT_EQ(os.str(), "42 0 9 3");
}

}  // namespace
}  // namespace mugi
