/**
 * @file
 * Negative compile test: opaque ids of different kinds must not be
 * comparable.  A SessionId and a BlockId are both small integers
 * underneath, and comparing them is always a logic bug (it once
 * would have been an unnoticed `uint64_t == uint32_t`).  CI builds
 * this target and asserts a non-zero exit.
 */

#include "support/units.h"

int
main()
{
    mugi::units::SessionId session(7);
    mugi::units::BlockId block(7);
    // Different id kinds: equality must not compile.
    return session == block ? 0 : 1;
}
