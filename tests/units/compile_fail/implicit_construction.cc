/**
 * @file
 * Negative compile test: Quantity construction is explicit, so a raw
 * integer must never silently become a unit-typed value.  The whole
 * point of units.h is that the call site names the unit; implicit
 * conversion would let a bytes count flow into a tokens parameter
 * unnoticed.  CI builds this target and asserts a non-zero exit.
 */

#include "support/units.h"

namespace {

std::size_t
charge(mugi::units::Tokens tokens)
{
    return tokens.value();
}

}  // namespace

int
main()
{
    // Raw integer where Tokens is required: must not compile.
    return static_cast<int>(charge(42));
}
