/**
 * @file
 * Negative compile test: adding Tokens to Bytes must not compile.
 * Quantity's arithmetic is same-tag only; the only way across units
 * is a named conversion helper (units::bytes_for etc.) that carries
 * the block geometry explicitly.  CI builds this target and asserts
 * a non-zero exit (see mugi_units_misuse_* in CMakeLists.txt).
 */

#include "support/units.h"

int
main()
{
    mugi::units::Tokens tokens(8);
    mugi::units::Bytes bytes(64);
    // Dimensional nonsense: tokens + bytes has no meaning.
    auto mixed = tokens + bytes;
    return static_cast<int>(mixed.value());
}
