#include "vlp/nonlinear_lut.h"

#include <cmath>

#include <gtest/gtest.h>

#include "numerics/bfloat16.h"

namespace mugi {
namespace vlp {
namespace {

using nonlinear::NonlinearOp;

TEST(NonlinearLut, ExpEntriesMatchGridPoints)
{
    LutConfig config;
    config.op = NonlinearOp::kExp;
    config.mantissa_bits = 3;
    config.min_exp = -3;
    config.max_exp = 4;
    config.signed_input = false;
    const NonlinearLut lut(config);
    for (std::uint32_t m = 0; m < 8; ++m) {
        for (int e = -3; e <= 4; ++e) {
            const double x = -std::ldexp(1.0 + m / 8.0, e);
            const float expected =
                numerics::bf16_round(static_cast<float>(std::exp(x)));
            EXPECT_EQ(lut.entry(true, m, e), expected)
                << "m=" << m << " e=" << e;
        }
    }
}

TEST(NonlinearLut, SignedLutStoresBothHalves)
{
    LutConfig config;
    config.op = NonlinearOp::kSilu;
    config.mantissa_bits = 3;
    config.min_exp = -2;
    config.max_exp = 3;
    config.signed_input = true;
    const NonlinearLut lut(config);
    const double x = std::ldexp(1.0 + 3 / 8.0, 1);
    EXPECT_EQ(lut.entry(false, 3, 1),
              numerics::bf16_round(
                  static_cast<float>(nonlinear::silu_ref(x))));
    EXPECT_EQ(lut.entry(true, 3, 1),
              numerics::bf16_round(
                  static_cast<float>(nonlinear::silu_ref(-x))));
}

TEST(NonlinearLut, SizeMatchesConfig)
{
    LutConfig config;
    config.op = NonlinearOp::kGelu;
    config.mantissa_bits = 3;
    config.min_exp = -4;
    config.max_exp = 3;
    config.signed_input = true;
    const NonlinearLut lut(config);
    // 2 signs x 8 mantissas x 8 exponents.
    EXPECT_EQ(lut.size(), 2u * 8u * 8u);
    EXPECT_EQ(lut.byte_size(), 2u * 8u * 8u * 2u);

    config.signed_input = false;
    config.op = NonlinearOp::kExp;
    const NonlinearLut half(config);
    // "The LUT size will double if the nonlinear operation has both
    // positive and negative inputs" (Sec. 4.1) -- and halves if not.
    EXPECT_EQ(half.size(), lut.size() / 2);
}

TEST(NonlinearLut, RowIsExponentAscending)
{
    LutConfig config;
    config.op = NonlinearOp::kExp;
    config.mantissa_bits = 3;
    config.min_exp = -3;
    config.max_exp = 4;
    config.signed_input = false;
    const NonlinearLut lut(config);
    const auto row = lut.row(true, 5);
    ASSERT_EQ(row.size(), 8u);
    for (int e = -3; e <= 4; ++e) {
        EXPECT_EQ(row[e + 3], lut.entry(true, 5, e));
    }
    // exp of increasingly negative inputs decreases along the row.
    for (std::size_t i = 1; i < row.size(); ++i) {
        EXPECT_LT(row[i], row[i - 1]);
    }
}

TEST(NonlinearLut, DefaultSignednessPerOp)
{
    EXPECT_FALSE(default_signed_input(NonlinearOp::kExp));
    EXPECT_TRUE(default_signed_input(NonlinearOp::kSilu));
    EXPECT_TRUE(default_signed_input(NonlinearOp::kGelu));
}

class LutMantissaBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(LutMantissaBitsTest, RowCountMatchesMantissaWidth)
{
    LutConfig config;
    config.op = NonlinearOp::kSilu;
    config.mantissa_bits = GetParam();
    config.min_exp = -2;
    config.max_exp = 2;
    const NonlinearLut lut(config);
    EXPECT_EQ(lut.size(),
              2u * (1u << GetParam()) *
                  static_cast<std::size_t>(config.num_exponents()));
}

INSTANTIATE_TEST_SUITE_P(Widths, LutMantissaBitsTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace vlp
}  // namespace mugi
