#include "vlp/sliding_window.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace mugi {
namespace vlp {
namespace {

LutConfig
wide_lut()
{
    LutConfig config;
    config.op = nonlinear::NonlinearOp::kSilu;
    config.min_exp = -6;
    config.max_exp = 5;  // Fig. 5's example full window.
    return config;
}

std::vector<float>
values_with_exponents(const std::vector<int>& exps)
{
    std::vector<float> values;
    for (const int e : exps) {
        values.push_back(std::ldexp(1.5f, e));
    }
    return values;
}

TEST(SlidingWindow, WholeRangeWhenLutFits)
{
    LutConfig config = wide_lut();
    config.min_exp = -3;
    config.max_exp = 4;  // Exactly 8 exponents.
    const std::vector<float> inputs = {1.0f, 2.0f};
    const WindowChoice w =
        choose_window(inputs, config, 8, WindowPolicy::kCoverage);
    EXPECT_EQ(w.lo, -3);
    EXPECT_EQ(w.hi, 4);
}

TEST(SlidingWindow, PaperExampleCoverage)
{
    // Fig. 5: full window [-6, 5], inputs concentrated in [-3, 4],
    // window size 8 -> choose [-3, 4].
    const auto inputs = values_with_exponents(
        {-3, -2, -1, 0, 0, 1, 2, 3, 4, 4, -1, 0});
    const WindowChoice w =
        choose_window(inputs, wide_lut(), 8, WindowPolicy::kCoverage);
    EXPECT_EQ(w.lo, -3);
    EXPECT_EQ(w.hi, 4);
}

TEST(SlidingWindow, MaxAnchoredTracksLargestExponent)
{
    const auto inputs = values_with_exponents({-5, -4, 2});
    const WindowChoice w = choose_window(inputs, wide_lut(), 8,
                                         WindowPolicy::kMaxAnchored);
    EXPECT_EQ(w.hi, 2);
    EXPECT_EQ(w.lo, -5);
}

TEST(SlidingWindow, MinAnchoredTracksSmallestExponent)
{
    const auto inputs = values_with_exponents({-5, -4, 2});
    const WindowChoice w = choose_window(inputs, wide_lut(), 8,
                                         WindowPolicy::kMinAnchored);
    EXPECT_EQ(w.lo, -5);
    EXPECT_EQ(w.hi, 2);
}

TEST(SlidingWindow, FixedTopPinsToLutTop)
{
    const auto inputs = values_with_exponents({-6, -6, -6});
    const WindowChoice w = choose_window(inputs, wide_lut(), 8,
                                         WindowPolicy::kFixedTop);
    EXPECT_EQ(w.hi, 5);
    EXPECT_EQ(w.lo, -2);
}

TEST(SlidingWindow, CoveragePrefersDenseCluster)
{
    // 10 values at exponent -5..-4, 2 at +4: the window should cover
    // the dense low cluster even though the max-anchored policy would
    // chase the outliers.
    std::vector<int> exps(10, -5);
    exps.insert(exps.end(), {4, 4});
    const auto inputs = values_with_exponents(exps);
    const WindowChoice cov =
        choose_window(inputs, wide_lut(), 8, WindowPolicy::kCoverage);
    EXPECT_TRUE(cov.contains(-5));
    const WindowChoice max = choose_window(inputs, wide_lut(), 8,
                                           WindowPolicy::kMaxAnchored);
    EXPECT_FALSE(max.contains(-5));
}

TEST(SlidingWindow, WindowAlwaysInsideLutRange)
{
    const LutConfig lut = wide_lut();
    for (const WindowPolicy policy :
         {WindowPolicy::kMaxAnchored, WindowPolicy::kMinAnchored,
          WindowPolicy::kCoverage, WindowPolicy::kFixedTop}) {
        for (const int e : {-20, -6, 0, 5, 20}) {
            const auto inputs = values_with_exponents({e});
            const WindowChoice w = choose_window(inputs, lut, 8, policy);
            EXPECT_GE(w.lo, lut.min_exp) << window_policy_name(policy);
            EXPECT_LE(w.hi, lut.max_exp) << window_policy_name(policy);
            EXPECT_EQ(w.size(), 8) << window_policy_name(policy);
        }
    }
}

TEST(SlidingWindow, IgnoresSpecials)
{
    std::vector<float> inputs = values_with_exponents({-5, -5, -5});
    inputs.push_back(0.0f);
    inputs.push_back(INFINITY);
    inputs.push_back(std::nanf(""));
    const WindowChoice w =
        choose_window(inputs, wide_lut(), 8, WindowPolicy::kCoverage);
    EXPECT_TRUE(w.contains(-5));
}

TEST(SlidingWindow, EmptyInputStillValid)
{
    const std::vector<float> none;
    const WindowChoice w =
        choose_window(none, wide_lut(), 8, WindowPolicy::kCoverage);
    EXPECT_EQ(w.size(), 8);
    EXPECT_GE(w.lo, wide_lut().min_exp);
    EXPECT_LE(w.hi, wide_lut().max_exp);
}

}  // namespace
}  // namespace vlp
}  // namespace mugi
