#include "vlp/temporal.h"

#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace mugi {
namespace vlp {
namespace {

TEST(Temporal, ConverterSpikesExactlyOnce)
{
    const TemporalConverter tc(3);
    int spikes = 0;
    for (std::uint32_t c = 0; c < 8; ++c) {
        if (tc.spikes_at(c)) {
            ++spikes;
            EXPECT_EQ(c, 3u);
        }
    }
    EXPECT_EQ(spikes, 1);
}

TEST(Temporal, MultiplyPaperExample)
{
    // Fig. 2(b-d): i = 3, w = 1 -> product 3 after an 8-cycle sweep.
    const SweepResult r = temporal_multiply(3, 1.0, 3);
    EXPECT_DOUBLE_EQ(r.products[0], 3.0);
    EXPECT_EQ(r.cycles, 8u);
}

TEST(Temporal, MultiplyExhaustive3Bit)
{
    for (std::uint32_t i = 0; i < 8; ++i) {
        for (double w = -4.0; w <= 4.0; w += 0.25) {
            const SweepResult r = temporal_multiply(i, w, 3);
            EXPECT_DOUBLE_EQ(r.products[0], i * w)
                << "i=" << i << " w=" << w;
        }
    }
}

TEST(Temporal, MultiplyWiderCodes)
{
    std::mt19937 rng(91);
    for (int bits = 1; bits <= 8; ++bits) {
        std::uniform_int_distribution<std::uint32_t> vdist(
            0, (1u << bits) - 1);
        std::uniform_real_distribution<double> wdist(-10.0, 10.0);
        for (int t = 0; t < 50; ++t) {
            const std::uint32_t i = vdist(rng);
            const double w = wdist(rng);
            const SweepResult r = temporal_multiply(i, w, bits);
            // Repeated addition accumulates one rounding per cycle,
            // so allow i ulps of slack for wide temporal codes.
            EXPECT_NEAR(r.products[0], i * w,
                        (i + 1.0) * 1e-13 * std::fabs(w));
            EXPECT_EQ(r.cycles, 1ull << bits);
        }
    }
}

TEST(Temporal, ScalarVectorValueReuse)
{
    // Fig. 2(e): one accumulation of w shared by all elements.
    const std::vector<std::uint32_t> values = {3, 1, 3, 0, 7, 5};
    const SweepResult r = temporal_scalar_vector(values, 2.5, 3);
    ASSERT_EQ(r.products.size(), values.size());
    for (std::size_t k = 0; k < values.size(); ++k) {
        EXPECT_DOUBLE_EQ(r.products[k], values[k] * 2.5);
    }
    EXPECT_EQ(r.cycles, 8u);
}

TEST(Temporal, OuterProductMatchesDirect)
{
    std::mt19937 rng(101);
    std::uniform_int_distribution<std::uint32_t> vdist(0, 7);
    std::uniform_real_distribution<double> wdist(-3.0, 3.0);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint32_t> rows(16);
        std::vector<double> cols(8);
        for (auto& v : rows) v = vdist(rng);
        for (auto& w : cols) w = wdist(rng);
        const SweepResult r = temporal_outer_product(rows, cols, 3);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            for (std::size_t j = 0; j < cols.size(); ++j) {
                EXPECT_DOUBLE_EQ(r.products[i * cols.size() + j],
                                 rows[i] * cols[j]);
            }
        }
    }
}

TEST(Temporal, OuterProductStaggeredLatency)
{
    // Columns are staggered by one cycle: 2^bits + cols - 1 total.
    const std::vector<std::uint32_t> rows = {1, 2};
    const std::vector<double> cols = {1.0, 2.0, 3.0, 4.0};
    const SweepResult r = temporal_outer_product(rows, cols, 3);
    EXPECT_EQ(r.cycles, 8u + 4u - 1u);
}

class TemporalBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(TemporalBitsTest, SweepLengthIsExponential)
{
    const int bits = GetParam();
    const SweepResult r = temporal_multiply(0, 1.0, bits);
    // Sec. 2.1: temporal spike latency is 2^n for n-bit inputs, which
    // is why VLP favours small bitwidths.
    EXPECT_EQ(r.cycles, 1ull << bits);
}

INSTANTIATE_TEST_SUITE_P(Widths, TemporalBitsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace vlp
}  // namespace mugi
