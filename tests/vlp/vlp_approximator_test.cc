#include "vlp/vlp_approximator.h"

#include <cmath>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "numerics/bfloat16.h"
#include "numerics/rounding.h"

namespace mugi {
namespace vlp {
namespace {

using nonlinear::NonlinearOp;

VlpConfig
exp_config()
{
    VlpConfig config;
    config.op = NonlinearOp::kExp;
    config.lut_min_exp = -3;
    config.lut_max_exp = 4;
    return config;
}

VlpConfig
silu_config()
{
    VlpConfig config;
    config.op = NonlinearOp::kSilu;
    config.lut_min_exp = -4;
    config.lut_max_exp = 3;
    return config;
}

TEST(VlpApproximator, InputApproximationSemantics)
{
    // The defining property (Sec. 3): output == exact function at the
    // rounded/windowed input grid point.
    const VlpApproximator vlp(exp_config());
    std::mt19937 rng(111);
    std::uniform_real_distribution<float> dist(-15.0f, 0.0f);
    for (int i = 0; i < 5000; ++i) {
        const float x = dist(rng);
        const float got = vlp.apply(x);
        const numerics::RoundedValue r =
            numerics::round_mantissa(numerics::bf16_round(x), 3);
        if (r.is_zero || r.exponent < -3 || r.exponent > 4) {
            continue;  // Window-clamped; separate tests below.
        }
        const float grid = r.to_float();
        const float expected = numerics::bf16_round(
            static_cast<float>(std::exp(static_cast<double>(grid))));
        EXPECT_EQ(got, expected) << x;
    }
}

TEST(VlpApproximator, RelativeErrorBoundInsideWindow)
{
    // Rounding the significand to 3 bits perturbs the input by at most
    // 2^-4 relative; for exp the output error is |x| * 2^-4 relative
    // at worst (|d exp / exp| = |dx|).  Check a generous bound.
    const VlpApproximator vlp(exp_config());
    for (float x = -7.9f; x <= -0.13f; x += 0.013f) {
        const double exact = std::exp(static_cast<double>(x));
        const double got = vlp.apply(x);
        const double input_step =
            std::fabs(x) * (1.0 / 16.0 + 1.0 / 256.0);
        const double bound = exact * (std::exp(input_step) - 1.0) + 1e-3;
        EXPECT_NEAR(got, exact, bound + 0.01 * exact) << x;
    }
}

TEST(VlpApproximator, UnderflowTreatedAsZero)
{
    const VlpApproximator vlp(exp_config());
    // Exponent below window.lo (-3): |x| < 2^-3 -> treated as 0.
    EXPECT_EQ(vlp.apply(-0.05f), 1.0f);   // exp(0) = 1.
    EXPECT_EQ(vlp.apply(0.0f), 1.0f);

    const VlpApproximator silu(silu_config());
    EXPECT_EQ(silu.apply(0.01f), 0.0f);   // SiLU(0) = 0.
    EXPECT_EQ(silu.apply(0.0f), 0.0f);
}

TEST(VlpApproximator, SoftmaxOverflowClampsIntoLut)
{
    const VlpApproximator vlp(exp_config());
    // Exponent above window.hi (4): clamp to the deepest LUT entry.
    const float deep = vlp.apply(-200.0f);
    EXPECT_GT(deep, 0.0f);
    EXPECT_LT(deep, 1e-8f);  // exp(-(1+7/8) * 2^4) territory.
    // All overflowing inputs clamp to the same single deepest entry.
    EXPECT_EQ(vlp.apply(-500.0f), vlp.apply(-400.0f));
    EXPECT_EQ(vlp.apply(-200.0f), vlp.apply(-1000.0f));
}

TEST(VlpApproximator, SiluGeluOverflowPassesThrough)
{
    const VlpApproximator silu(silu_config());
    // Above the window top (2^4 = 16 and beyond): identity / zero.
    EXPECT_EQ(silu.apply(24.0f), 24.0f);
    EXPECT_EQ(silu.apply(-24.0f), 0.0f);

    VlpConfig gelu_cfg = silu_config();
    gelu_cfg.op = NonlinearOp::kGelu;
    const VlpApproximator gelu(gelu_cfg);
    EXPECT_EQ(gelu.apply(24.0f), 24.0f);
    EXPECT_EQ(gelu.apply(-24.0f), 0.0f);
}

TEST(VlpApproximator, SpecialValues)
{
    const VlpApproximator vlp(exp_config());
    EXPECT_TRUE(std::isnan(vlp.apply(std::nanf(""))));
    EXPECT_EQ(vlp.apply(-INFINITY), 0.0f);

    const VlpApproximator silu(silu_config());
    EXPECT_TRUE(std::isnan(silu.apply(std::nanf(""))));
    EXPECT_EQ(silu.apply(-INFINITY), 0.0f);
    EXPECT_EQ(silu.apply(INFINITY), INFINITY);
}

TEST(VlpApproximator, PositiveInputToSoftmaxExpClampedToOne)
{
    const VlpApproximator vlp(exp_config());
    // Max-subtracted softmax never produces positive inputs; the
    // single-sign datapath treats stray positives as zero.
    EXPECT_EQ(vlp.apply(0.5f), 1.0f);
}

TEST(VlpApproximator, ValueCentricBeatsFixedWindowOffCluster)
{
    // Inputs cluster at small magnitudes; a sliding (coverage) window
    // must beat a fixed-top window pinned at large exponents.
    VlpConfig wide = exp_config();
    wide.lut_min_exp = -6;
    wide.lut_max_exp = 5;
    wide.window_size = 4;
    wide.policy = WindowPolicy::kCoverage;
    VlpConfig fixed = wide;
    fixed.policy = WindowPolicy::kFixedTop;
    const VlpApproximator sliding(wide);
    const VlpApproximator pinned(fixed);

    std::mt19937 rng(121);
    std::uniform_real_distribution<float> dist(-0.9f, -0.2f);
    std::vector<float> inputs(256);
    for (float& v : inputs) v = dist(rng);
    std::vector<float> out_sliding(inputs.size());
    std::vector<float> out_pinned(inputs.size());
    sliding.apply_batch(inputs, out_sliding);
    pinned.apply_batch(inputs, out_pinned);

    double err_sliding = 0.0, err_pinned = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const double exact = std::exp(inputs[i]);
        err_sliding += std::fabs(out_sliding[i] - exact);
        err_pinned += std::fabs(out_pinned[i] - exact);
    }
    EXPECT_LT(err_sliding, err_pinned / 2.0);
}

TEST(VlpApproximator, BatchWindowsAreChosenPerMapping)
{
    VlpConfig config = exp_config();
    config.lut_min_exp = -6;
    config.lut_max_exp = 5;
    config.window_size = 4;
    config.mapping_rows = 4;
    const VlpApproximator vlp(config);
    // First mapping clusters at exponent -4.., second at +2..: each
    // mapping gets its own window so both are accurate.
    std::vector<float> inputs = {-0.1f,  -0.12f, -0.09f, -0.11f,
                                 -6.0f,  -7.0f,  -5.5f,  -6.5f};
    std::vector<float> out(inputs.size());
    vlp.apply_batch(inputs, out);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const double exact = std::exp(inputs[i]);
        EXPECT_NEAR(out[i], exact, 0.05 * exact + 5e-3) << i;
    }
}

TEST(VlpApproximator, MappingLatencyIsSumOfSubscriptions)
{
    const VlpApproximator vlp(exp_config());
    // Sec. 3.1 / Fig. 3(g): mantissa sweep (8) + exponent
    // subscription (8) = 16 cycles end-to-end for one mapping.
    EXPECT_EQ(vlp.mapping_latency_cycles(), 16u);
    // Pipelined throughput: one element per row per 8 cycles.
    EXPECT_DOUBLE_EQ(vlp.cycles_per_element(), 8.0);
}

TEST(VlpApproximator, SoftmaxEndToEndCloseToExact)
{
    const VlpApproximator vlp(exp_config());
    std::mt19937 rng(131);
    std::normal_distribution<float> dist(0.0f, 2.0f);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<float> logits(64);
        for (float& v : logits) v = dist(rng);
        std::vector<float> approx(logits.size());
        nonlinear::softmax_with(vlp, logits, approx);
        const auto exact = nonlinear::softmax_ref(logits);
        double sum = std::accumulate(approx.begin(), approx.end(), 0.0);
        EXPECT_NEAR(sum, 1.0, 1e-5);
        double l1 = 0.0;
        for (std::size_t i = 0; i < approx.size(); ++i) {
            l1 += std::fabs(approx[i] - exact[i]);
        }
        EXPECT_LT(l1, 0.2) << trial;  // Total variation distance.
    }
}

class VlpOpTest : public ::testing::TestWithParam<NonlinearOp> {};

TEST_P(VlpOpTest, AccurateNearTheImportantRegion)
{
    const NonlinearOp op = GetParam();
    VlpConfig config;
    config.op = op;
    if (op == NonlinearOp::kExp) {
        config.lut_min_exp = -3;
        config.lut_max_exp = 4;
    } else {
        // A window reaching down to 2^-6 so the underflow flush only
        // affects |x| < 0.016, where SiLU/GELU are below 0.01.
        config.lut_min_exp = -6;
        config.lut_max_exp = 1;
    }
    const VlpApproximator vlp(config);
    // Fig. 8: VLP "has the best accuracy where inputs are important"
    // -- around zero for SiLU/GELU.  Tolerance reflects the 3-bit
    // mantissa grid (~6% input step).
    double worst = 0.0;
    for (float x = -2.0f; x <= (op == NonlinearOp::kExp ? -0.13f : 2.0f);
         x += 0.01f) {
        const double exact = nonlinear::eval_ref(op, x);
        const double err = std::fabs(vlp.apply(x) - exact);
        const double rel = err / std::max(0.1, std::fabs(exact));
        worst = std::max(worst, rel);
    }
    EXPECT_LT(worst, 0.12) << nonlinear::op_name(op);
}

INSTANTIATE_TEST_SUITE_P(Ops, VlpOpTest,
                         ::testing::Values(NonlinearOp::kExp,
                                           NonlinearOp::kSilu,
                                           NonlinearOp::kGelu),
                         [](const auto& info) {
                             return nonlinear::op_name(info.param);
                         });

TEST(VlpApproximator, MakeVlpFigureSixParameterization)
{
    // Fig. 6 sweeps LUT size and max exp; verify the mapping.
    const auto vlp = make_vlp(NonlinearOp::kExp, 10, 2);
    EXPECT_EQ(vlp->config().lut_max_exp, 2);
    EXPECT_EQ(vlp->config().lut_min_exp, 2 - 10 + 1);
    EXPECT_EQ(vlp->lut().config().num_exponents(), 10);
}

}  // namespace
}  // namespace vlp
}  // namespace mugi
