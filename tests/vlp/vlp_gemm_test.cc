#include "vlp/vlp_gemm.h"

#include <random>

#include <gtest/gtest.h>

#include "numerics/bfloat16.h"

namespace mugi {
namespace vlp {
namespace {

Int4Matrix
random_int4(std::size_t rows, std::size_t cols, std::mt19937& rng)
{
    Int4Matrix m(rows, cols);
    std::uniform_int_distribution<int> dist(-7, 7);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            m.at(r, c) = numerics::Int4::from_int(dist(rng));
        }
    }
    return m;
}

support::MatrixF
random_bf16(std::size_t rows, std::size_t cols, std::mt19937& rng)
{
    support::MatrixF m(rows, cols);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    for (float& v : m.data()) {
        v = numerics::bf16_round(dist(rng));
    }
    return m;
}

TEST(VlpGemmMugi, MatchesReferenceExactly)
{
    std::mt19937 rng(141);
    const Int4Matrix w = random_int4(24, 12, rng);
    const support::MatrixF x = random_bf16(12, 8, rng);
    const VlpGemmResult got = vlp_gemm_mugi(w, x, 16, 8);
    const support::MatrixF expected = int4_gemm_reference(w, x);
    ASSERT_EQ(got.out.rows(), expected.rows());
    ASSERT_EQ(got.out.cols(), expected.cols());
    for (std::size_t n = 0; n < expected.rows(); ++n) {
        for (std::size_t b = 0; b < expected.cols(); ++b) {
            EXPECT_EQ(got.out.at(n, b), expected.at(n, b))
                << n << "," << b;
        }
    }
}

TEST(VlpGemmMugi, MatchesFloatGemmClosely)
{
    // Temporal accumulation of BF16 activations with magnitudes <= 7
    // is exact in binary32, so the result also matches an fma-free
    // float GEMM up to accumulation-order effects (none here: same
    // k-ascending order).
    std::mt19937 rng(151);
    const Int4Matrix w = random_int4(9, 33, rng);
    const support::MatrixF x = random_bf16(33, 5, rng);
    const VlpGemmResult got = vlp_gemm_mugi(w, x, 8, 8);
    for (std::size_t n = 0; n < w.rows(); ++n) {
        for (std::size_t b = 0; b < x.cols(); ++b) {
            float direct = 0.0f;
            for (std::size_t k = 0; k < w.cols(); ++k) {
                direct += static_cast<float>(w.at(n, k).value()) *
                          x.at(k, b);
            }
            EXPECT_NEAR(got.out.at(n, b), direct, 1e-4)
                << n << "," << b;
        }
    }
}

TEST(VlpGemmMugi, CycleCountMatchesAnalyticModel)
{
    std::mt19937 rng(161);
    const struct {
        std::size_t n, k, b;
        int h, w;
    } cases[] = {
        {16, 8, 8, 16, 8},  {32, 8, 8, 16, 8},  {16, 8, 16, 16, 8},
        {17, 3, 9, 16, 8},  {128, 4, 8, 32, 8}, {5, 5, 5, 8, 8},
    };
    for (const auto& c : cases) {
        const Int4Matrix w = random_int4(c.n, c.k, rng);
        const support::MatrixF x = random_bf16(c.k, c.b, rng);
        const VlpGemmResult got = vlp_gemm_mugi(w, x, c.h, c.w);
        EXPECT_EQ(got.cycles,
                  vlp_gemm_mugi_cycles(c.n, c.b, c.k, c.h, c.w))
            << c.n << "x" << c.k << "x" << c.b;
    }
}

TEST(VlpGemmMugi, EverySubscriptionFiresExactlyOnce)
{
    std::mt19937 rng(171);
    const Int4Matrix w = random_int4(16, 10, rng);
    const support::MatrixF x = random_bf16(10, 8, rng);
    const VlpGemmResult got = vlp_gemm_mugi(w, x, 16, 8);
    // One subscription per (n, k, b) triple: N*K*B total.
    EXPECT_EQ(got.subscriptions, 16u * 10u * 8u);
}

TEST(VlpGemmMugi, ZeroWeightsContributeZero)
{
    Int4Matrix w(4, 4);  // All zeros.
    std::mt19937 rng(181);
    const support::MatrixF x = random_bf16(4, 4, rng);
    const VlpGemmResult got = vlp_gemm_mugi(w, x, 4, 4);
    for (const float v : got.out.data()) {
        EXPECT_EQ(v, 0.0f);
    }
}

TEST(VlpGemmCarat, SymmetricMappingMatchesReference)
{
    std::mt19937 rng(191);
    const Int4Matrix acts = random_int4(12, 20, rng);
    const support::MatrixF w = random_bf16(20, 16, rng);
    const VlpGemmResult got = vlp_gemm_carat(acts, w, 8, 8);
    for (std::size_t m = 0; m < acts.rows(); ++m) {
        for (std::size_t n = 0; n < w.cols(); ++n) {
            float direct = 0.0f;
            for (std::size_t k = 0; k < acts.cols(); ++k) {
                direct += static_cast<float>(acts.at(m, k).value()) *
                          w.at(k, n);
            }
            EXPECT_NEAR(got.out.at(m, n), direct, 1e-4);
        }
    }
}

TEST(VlpGemmSweepAccumulator, BitIdenticalToBaselineAcrossRaggedShapes)
{
    // The sweep-accumulator kernel must reproduce the literal
    // cycle-by-row scan bit for bit -- outputs and all three
    // counters -- including tile remainders, single rows/columns and
    // an empty batch.
    std::mt19937 rng(401);
    const struct {
        std::size_t n, k, b;
        int h, w;
    } cases[] = {
        {24, 12, 8, 16, 8},   // tile remainder on rows
        {17, 3, 9, 16, 8},    // remainders on rows and columns
        {1, 1, 1, 8, 8},      // single everything
        {1, 16, 8, 64, 8},    // single row
        {64, 16, 1, 64, 8},   // single column (decode shape)
        {64, 16, 0, 64, 8},   // empty batch
        {5, 5, 5, 3, 2},      // tiny array, ragged everywhere
        {256, 32, 24, 256, 8},  // serving shape
        {33, 0, 7, 16, 8},    // empty reduction
    };
    for (const auto& c : cases) {
        const Int4Matrix w = random_int4(c.n, c.k, rng);
        const support::MatrixF x = random_bf16(c.k, c.b, rng);
        const VlpGemmResult fast = vlp_gemm_mugi(w, x, c.h, c.w);
        const VlpGemmResult golden =
            vlp_gemm_mugi_baseline(w, x, c.h, c.w);
        EXPECT_TRUE(fast.out == golden.out)
            << c.n << "x" << c.k << "x" << c.b;
        EXPECT_EQ(fast.cycles, golden.cycles);
        EXPECT_EQ(fast.sweeps, golden.sweeps);
        EXPECT_EQ(fast.subscriptions, golden.subscriptions);
    }
}

TEST(VlpGemmSweepAccumulator, CaratBitIdenticalToBaseline)
{
    std::mt19937 rng(411);
    const struct {
        std::size_t m, k, n;
        int h, w;
    } cases[] = {
        {12, 20, 16, 8, 8},
        {7, 5, 3, 4, 2},
        {1, 9, 1, 64, 8},
        {30, 6, 0, 8, 8},
        {64, 16, 33, 64, 8},
    };
    for (const auto& c : cases) {
        const Int4Matrix acts = random_int4(c.m, c.k, rng);
        const support::MatrixF w = random_bf16(c.k, c.n, rng);
        const VlpGemmResult fast = vlp_gemm_carat(acts, w, c.h, c.w);
        const VlpGemmResult golden =
            vlp_gemm_carat_baseline(acts, w, c.h, c.w);
        EXPECT_TRUE(fast.out == golden.out)
            << c.m << "x" << c.k << "x" << c.n;
        EXPECT_EQ(fast.cycles, golden.cycles);
        EXPECT_EQ(fast.sweeps, golden.sweeps);
        EXPECT_EQ(fast.subscriptions, golden.subscriptions);
    }
}

TEST(SubscriptionLists, EveryRowAppearsOncePerColumnAtItsMagnitude)
{
    std::mt19937 rng(421);
    const Int4Matrix w = random_int4(19, 7, rng);
    const SubscriptionLists subs(w);
    ASSERT_EQ(subs.rows(), w.rows());
    ASSERT_EQ(subs.cols(), w.cols());
    for (std::size_t k = 0; k < w.cols(); ++k) {
        std::vector<int> seen(w.rows(), 0);
        std::size_t total = 0;
        for (std::uint32_t m = 0; m < 8; ++m) {
            for (const std::uint32_t entry : subs.bucket(k, m)) {
                const std::size_t row =
                    SubscriptionLists::entry_row(entry);
                ASSERT_LT(row, w.rows());
                EXPECT_EQ(SubscriptionLists::entry_magnitude(entry),
                          w.at(row, k).magnitude);
                EXPECT_EQ(SubscriptionLists::entry_sign(entry),
                          w.at(row, k).sign);
                ++seen[row];
                ++total;
            }
        }
        EXPECT_EQ(total, w.rows());
        for (const int count : seen) {
            EXPECT_EQ(count, 1) << "column " << k;
        }
        EXPECT_EQ(subs.column(k).size(), w.rows());
    }
}

TEST(SubscriptionLists, PackedTilesCoverExactlyTheNonzeroEntries)
{
    // Every nonzero-magnitude (row, k) entry appears in exactly one
    // packed tile with the right local index and sign-magnitude
    // nibble; the zero bucket is dropped at build time.
    std::mt19937 rng(441);
    const Int4Matrix w = random_int4(19, 7, rng);
    const SubscriptionLists subs(w);
    ASSERT_EQ(subs.tile_count(), 1u);  // 19 rows < one 4096-row tile.
    for (std::size_t k = 0; k < w.cols(); ++k) {
        std::vector<int> seen(w.rows(), 0);
        for (std::size_t tile = 0; tile < subs.tile_count(); ++tile) {
            for (const std::uint16_t entry : subs.packed_tile(k, tile)) {
                const std::size_t row =
                    tile * SubscriptionLists::kTileRows +
                    (entry >> 4);
                ASSERT_LT(row, w.rows());
                EXPECT_EQ(entry & 0x7u, w.at(row, k).magnitude);
                EXPECT_EQ((entry & 0x8u) != 0, w.at(row, k).sign);
                EXPECT_NE(w.at(row, k).magnitude, 0u);
                ++seen[row];
            }
        }
        for (std::size_t row = 0; row < w.rows(); ++row) {
            EXPECT_EQ(seen[row], w.at(row, k).magnitude != 0 ? 1 : 0)
                << "row " << row << " column " << k;
        }
    }
}

TEST(VlpGemmSubscribedPacked, BitIdenticalToU32AcrossRaggedShapes)
{
    // The tile-local u16 executor must reproduce the u32 cycle-major
    // walk bit for bit across the same ragged-shape matrix the sweep
    // kernel is pinned on, plus a multi-tile shape (> 4096 rows) that
    // exercises the tile-major visit order.
    std::mt19937 rng(451);
    const struct {
        std::size_t n, k, b;
    } cases[] = {
        {24, 12, 8},  {17, 3, 9},  {1, 1, 1},    {1, 16, 8},
        {64, 16, 1},  {64, 16, 0}, {5, 5, 5},    {256, 32, 24},
        {33, 0, 7},   {4100, 6, 3},  // spans two row tiles
    };
    for (const auto& c : cases) {
        const Int4Matrix w = random_int4(c.n, c.k, rng);
        const support::MatrixF x = random_bf16(c.k, c.b, rng);
        const SubscriptionLists subs(w);
        support::MatrixF u32_out(c.n, c.b, 0.0f);
        support::MatrixF packed_out(c.n, c.b, 0.0f);
        vlp_gemm_subscribed(subs, x, 0, c.k, u32_out);
        vlp_gemm_subscribed_packed(subs, x, 0, c.k, packed_out);
        EXPECT_TRUE(packed_out == u32_out)
            << c.n << "x" << c.k << "x" << c.b;
    }
}

TEST(VlpGemmSubscribedPacked, PartialKRangesComposeToTheFullGemm)
{
    std::mt19937 rng(461);
    const Int4Matrix w = random_int4(21, 13, rng);
    const support::MatrixF x = random_bf16(13, 5, rng);
    const SubscriptionLists subs(w);
    support::MatrixF split(21, 5, 0.0f);
    vlp_gemm_subscribed_packed(subs, x, 0, 6, split);
    vlp_gemm_subscribed_packed(subs, x, 6, 13, split);
    const VlpGemmResult whole = vlp_gemm_mugi(w, x, 64, 8);
    EXPECT_TRUE(split == whole.out);
}

TEST(VlpGemmSubscribed, PartialKRangesComposeToTheFullGemm)
{
    // Running [0, k0) then [k0, K) over the same output accumulates
    // the full GEMM -- the property the grouped serving path relies
    // on (one k-run per quantization group, no weight copies).
    std::mt19937 rng(431);
    const Int4Matrix w = random_int4(21, 13, rng);
    const support::MatrixF x = random_bf16(13, 5, rng);
    const SubscriptionLists subs(w);
    support::MatrixF split(21, 5, 0.0f);
    vlp_gemm_subscribed(subs, x, 0, 6, split);
    vlp_gemm_subscribed(subs, x, 6, 13, split);
    const VlpGemmResult whole = vlp_gemm_mugi(w, x, 64, 8);
    EXPECT_TRUE(split == whole.out);
}

TEST(VlpGemm, MugiMappingUtilizationAdvantageAtSmallBatch)
{
    // Sec. 4.2: with batch 8 on the columns, Mugi's transposed mapping
    // fills the array; Carat's row mapping of the batch leaves rows
    // idle.  Compare sweeps (occupancy proxy) for the same GEMM.
    std::mt19937 rng(201);
    const std::size_t n = 64, k = 16, b = 8;
    const Int4Matrix w = random_int4(n, k, rng);
    const support::MatrixF x = random_bf16(k, b, rng);
    const VlpGemmResult mugi = vlp_gemm_mugi(w, x, 64, 8);

    // Carat maps the batch (8) across its 64 rows: 56 idle rows.
    Int4Matrix acts_t(b, k);
    support::MatrixF w_t(k, n);
    std::uniform_int_distribution<int> dist(-7, 7);
    for (std::size_t i = 0; i < b; ++i)
        for (std::size_t j = 0; j < k; ++j)
            acts_t.at(i, j) = numerics::Int4::from_int(dist(rng));
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < n; ++j) w_t.at(i, j) = 1.0f;
    const VlpGemmResult carat = vlp_gemm_carat(acts_t, w_t, 64, 8);

    // Same MAC count; Mugi needs strictly fewer sweeps (cycles).
    EXPECT_LT(mugi.cycles, carat.cycles);
    EXPECT_EQ(mugi.cycles * 8, carat.cycles);  // 64/8 ratio.
}

}  // namespace
}  // namespace vlp
}  // namespace mugi
