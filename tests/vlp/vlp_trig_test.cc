#include "vlp/vlp_trig.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "model/ops.h"
#include "support/rng.h"

namespace mugi {
namespace vlp {
namespace {

VlpTrigConfig
config_for(TrigOp op)
{
    VlpTrigConfig config;
    config.op = op;
    return config;
}

class VlpTrigOpTest : public ::testing::TestWithParam<TrigOp> {};

TEST_P(VlpTrigOpTest, BoundedAbsoluteError)
{
    const VlpTrigApproximator approx(config_for(GetParam()));
    // The 3-bit mantissa grid perturbs the reduced angle by <= 1/16
    // relative; |d sin| <= |d theta| gives a ~0.2 absolute ceiling at
    // |theta| ~ pi, and much tighter near zero.
    for (float x = -20.0f; x <= 20.0f; x += 0.013f) {
        const double exact = approx.reference(x);
        const double got = approx.apply(x);
        EXPECT_NEAR(got, exact, 0.23) << trig_op_name(GetParam())
                                      << " x=" << x;
    }
}

TEST_P(VlpTrigOpTest, OutputsStayInUnitRange)
{
    const VlpTrigApproximator approx(config_for(GetParam()));
    std::mt19937 rng(601);
    std::uniform_real_distribution<float> dist(-1000.0f, 1000.0f);
    for (int i = 0; i < 5000; ++i) {
        const float y = approx.apply(dist(rng));
        EXPECT_GE(y, -1.0f);
        EXPECT_LE(y, 1.0f);
    }
}

TEST_P(VlpTrigOpTest, PeriodicityThroughRangeReduction)
{
    const VlpTrigApproximator approx(config_for(GetParam()));
    const float two_pi = static_cast<float>(2.0 * M_PI);
    for (float x = -3.0f; x <= 3.0f; x += 0.1f) {
        // One period away: the reduced angle only differs by the
        // double->float fmod rounding, so results are near-equal.
        EXPECT_NEAR(approx.apply(x), approx.apply(x + two_pi), 0.07)
            << x;
    }
}

TEST_P(VlpTrigOpTest, SpecialsReturnNan)
{
    const VlpTrigApproximator approx(config_for(GetParam()));
    EXPECT_TRUE(std::isnan(approx.apply(std::nanf(""))));
    EXPECT_TRUE(std::isnan(approx.apply(INFINITY)));
}

INSTANTIATE_TEST_SUITE_P(Ops, VlpTrigOpTest,
                         ::testing::Values(TrigOp::kSin, TrigOp::kCos),
                         [](const auto& info) {
                             return trig_op_name(info.param);
                         });

TEST(VlpTrig, ZeroAngleExact)
{
    const VlpTrigApproximator sine(config_for(TrigOp::kSin));
    const VlpTrigApproximator cosine(config_for(TrigOp::kCos));
    EXPECT_EQ(sine.apply(0.0f), 0.0f);
    EXPECT_EQ(cosine.apply(0.0f), 1.0f);
    // Underflowing angles follow the PP zero path.
    EXPECT_EQ(sine.apply(1e-4f), 0.0f);
    EXPECT_EQ(cosine.apply(1e-4f), 1.0f);
}

TEST(VlpTrig, SinIsOddCosIsEven)
{
    const VlpTrigApproximator sine(config_for(TrigOp::kSin));
    const VlpTrigApproximator cosine(config_for(TrigOp::kCos));
    for (float x = 0.05f; x <= 3.0f; x += 0.07f) {
        EXPECT_NEAR(sine.apply(-x), -sine.apply(x), 1e-6) << x;
        EXPECT_NEAR(cosine.apply(-x), cosine.apply(x), 1e-6) << x;
    }
}

TEST(VlpTrig, LutFootprintMatchesGeometry)
{
    const VlpTrigApproximator sine(config_for(TrigOp::kSin));
    // 2 signs x 8 mantissas x 8 exponents.
    EXPECT_EQ(sine.lut_entries(), 2u * 8u * 8u);
}

TEST(VlpTrig, RopeWithVlpTrigTracksExactRope)
{
    // The Sec. 7.1 extension end-to-end: VLP-approximated RoPE stays
    // close to the exact rotation and preserves vector norms
    // approximately.
    const VlpTrigApproximator sine(config_for(TrigOp::kSin));
    const VlpTrigApproximator cosine(config_for(TrigOp::kCos));
    std::mt19937 rng(607);
    support::MatrixF exact(4, 32);
    support::fill_gaussian(exact, rng, 0.0f, 1.0f);
    support::MatrixF approx = exact;

    model::apply_rope(exact, 2, 16, 3);
    apply_rope_vlp(approx, 2, 16, 3, sine, cosine);

    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double d = exact.data()[i] - approx.data()[i];
        err += d * d;
        norm += exact.data()[i] * exact.data()[i];
    }
    EXPECT_LT(std::sqrt(err / norm), 0.15);
}

}  // namespace
}  // namespace vlp
}  // namespace mugi
