#!/usr/bin/env python3
"""Repo-local lint gate (run in CI; no third-party deps).

Checks, each motivated by a concurrency-correctness contract:

1. No ``std::rand`` / ``rand(`` / ``time(`` in ``src/``: the serving
   stack promises bit-identical replays (engine.h, ISSUE PR 6), and
   hidden global-state entropy sources break that silently -- and
   ``std::rand`` is allowed to be non-thread-safe besides.  Tests
   derive churn from loop counters instead.

2. Every public header under ``src/serve/``, ``src/server/``,
   ``src/quant/`` and ``src/support/`` must carry an explicit
   ``Thread-safety:`` contract block, so the capability annotations
   (support/thread_annotations.h) are always paired with prose
   stating *which* of the three repo contracts the class follows:
   immutable, internally synchronized, or externally serialized.

3. Every ``MUGI_FAULT_POINT("site")`` literal in ``src/`` must be
   documented in DESIGN.md's fault-site table (the site name in
   backticks).  An undocumented site is chaos coverage nobody can
   reason about -- the chaos gates assert invariants per site, so
   the contract each site simulates has to be written down.

Exit status 0 when clean; 1 with one ``file:line: message`` per
violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Global-state entropy/time calls banned from src/ (deterministic
# replay + thread-safety).  Word-boundary so e.g. `runtime(` or
# `strand(` never match.
BANNED_CALLS = [
    (re.compile(r"\bstd::rand\b"), "std::rand is banned in src/"),
    (re.compile(r"(?<![\w:])rand\s*\("), "rand( is banned in src/"),
    (re.compile(r"(?<![\w:_])time\s*\("), "time( is banned in src/"),
]

THREAD_SAFETY_DIRS = ("serve", "server", "quant", "support")
THREAD_SAFETY_RE = re.compile(r"Thread-safety\s*:")

FAULT_POINT_RE = re.compile(r'MUGI_FAULT_POINT\(\s*"([^"]+)"\s*\)')


def check_banned_calls(path: Path) -> list[str]:
    problems = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for pattern, message in BANNED_CALLS:
            if pattern.search(line):
                rel = path.relative_to(REPO)
                problems.append(f"{rel}:{lineno}: {message}")
    return problems


def check_thread_safety_contract(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    if THREAD_SAFETY_RE.search(text):
        return []
    rel = path.relative_to(REPO)
    return [
        f"{rel}:1: public header lacks a 'Thread-safety:' contract "
        "block (state whether the class is immutable, internally "
        "synchronized, or externally serialized)"
    ]


def check_fault_sites_documented() -> list[str]:
    """Every MUGI_FAULT_POINT site literal appears in DESIGN.md."""
    design_path = REPO / "DESIGN.md"
    design = (
        design_path.read_text(encoding="utf-8")
        if design_path.exists()
        else ""
    )
    problems = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in {".h", ".cc"}:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for site in FAULT_POINT_RE.findall(line):
                if f"`{site}`" not in design:
                    rel = path.relative_to(REPO)
                    problems.append(
                        f"{rel}:{lineno}: fault site \"{site}\" is "
                        "not documented in DESIGN.md's fault-site "
                        "table (add it in backticks)"
                    )
    return problems


def main() -> int:
    problems: list[str] = []

    for path in sorted(SRC.rglob("*")):
        if path.suffix not in {".h", ".cc"}:
            continue
        problems += check_banned_calls(path)

    for subdir in THREAD_SAFETY_DIRS:
        for header in sorted((SRC / subdir).glob("*.h")):
            problems += check_thread_safety_contract(header)

    problems += check_fault_sites_documented()

    if problems:
        print(f"tools/lint.py: {len(problems)} problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("tools/lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
