#!/usr/bin/env python3
"""mugi-check: unit-safety lint for the strong-type layer (units.h).

The strong types in ``src/support/units.h`` (Tokens, Blocks, Bytes,
Positions, SessionId, BlockId) only pay off if raw integers cannot
leak back into the accounting paths.  The compiler enforces
same-unit arithmetic; this checker enforces the conventions the type
system cannot see:

R1  raw-unit-param: public headers under ``src/serve/`` and
    ``src/quant/`` must not declare raw integer parameters named
    ``*_tokens`` / ``*_bytes`` / ``*_blocks`` / ``*_positions`` --
    that is exactly the signature units.h exists to replace.

R2  try-result-unused: a call to any ``try_*`` function whose result
    is discarded is a lost admission/allocation failure -- under
    fault injection (PR 10) ``try_allocate``/``try_reserve`` fail on
    purpose, so a dropped result silently swallows an injected
    fault.  (The headers also carry ``[[nodiscard]]``; this rule
    catches the ``(void)``-free discard styles the compiler warning
    misses when a caller builds with warnings off.)

R3  mixed-unit-arithmetic: one expression must not arithmetically
    combine two ``.value()`` unwraps of *different* units.  Unit
    crossings go through the named conversion helpers
    (``units::bytes_for`` / ``blocks_for`` / ``tokens_for`` /
    ``positions_for``), which carry the block geometry explicitly.

R4  admission-unwrap: the admission/reservation functions in
    ``src/serve/scheduler.cc`` (the accounting the paper's KV budget
    hangs off), the Scheduler retire paths (cancel / shutdown /
    deadline expiry, plus PR 10's overload sweeps: capacity shedding
    and admission timeouts, which retire requests that never held
    blocks), and the Server submission/cancellation paths in
    ``src/serve/server.cc`` must stay ``.value()``-free end to end;
    they speak units types only, via the named helpers.  Index-math functions (prefix keys,
    token emission) are exempt.

Two engines:

- **AST mode** (libclang via ``clang.cindex``): precise; required in
  CI (``--require-libclang``).
- **Textual mode**: a regex approximation of the same rules for
  machines without libclang; same rule IDs, same output format.

Output: one ``file:line: [Rn] message`` per finding; exit 1 when any
finding is not covered by the checked-in baseline
(``tools/mugi_check_baseline.txt``, expected clean), else 0.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PUBLIC_HEADER_DIRS = ("serve", "quant")
BASELINE = REPO / "tools" / "mugi_check_baseline.txt"

#: Suffixes that mark a quantity parameter (R1) or hint a unit (R3).
UNIT_SUFFIXES = {
    "tokens": "Tokens",
    "bytes": "Bytes",
    "blocks": "Blocks",
    "positions": "Positions",
}

#: Raw integer type spellings R1 rejects for unit-named parameters.
RAW_INT_TYPES = (
    r"(?:std::)?size_t",
    r"(?:std::)?u?int(?:8|16|32|64)_t",
    r"(?:unsigned\s+)?(?:long\s+)?(?:long|int|short)",
    r"unsigned",
)

#: Named conversion helpers: the only sanctioned unit crossings (R3).
CONVERSION_HELPERS = {
    "blocks_for",
    "full_blocks_for",
    "tokens_for",
    "bytes_for",
    "positions_for",
}

#: serve::Scheduler admission/reservation functions that must stay
#: .value()-free (R4).  Index-math functions (find_prefix_match,
#: prefix_keys_for, emit_token, step, check_invariants, ...) may
#: unwrap at their arithmetic leaves and are deliberately absent.
ADMISSION_FUNCTIONS = {
    "admission_bytes",
    "watermark_bytes",
    "resident_bytes",
    "growth_slack_bytes",
    "committed_total",
    "admit_arrivals",
    "preempt_for_pressure",
    "step_append_tokens",
    "sync_analytic_reservation",
}

#: Scheduler retire paths: everything that hands reserved blocks back
#: to the pool (cancellation, shutdown, deadline expiry) or retires a
#: request before admission (capacity shedding, admission timeouts --
#: PR 10's overload sweeps).  The release accounting must stay as
#: unit-typed as the admission accounting.
RETIRE_FUNCTIONS = {
    "cancel",
    "cancel_all",
    "retire_active",
    "finish_queued",
    "expire_deadlines",
    "expire_admission_timeouts",
    "shed_for_capacity",
}

SCHEDULER_CC = SRC / "serve" / "scheduler.cc"
SERVER_CC = SRC / "serve" / "server.cc"

#: R4 audit map: file -> (class, methods that must stay
#: .value()-free).  serve::Server sits between callers and the
#: Scheduler, so its submission/cancellation paths carry the same
#: quantities (delta-channel capacity from max_new_tokens, deadline
#: plumbing) and follow the same contract.
R4_AUDITED = {
    SCHEDULER_CC: (
        "Scheduler",
        ADMISSION_FUNCTIONS | RETIRE_FUNCTIONS,
    ),
    SERVER_CC: (
        "Server",
        {"submit", "cancel", "apply", "finish_unsubmitted"},
    ),
}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self) -> str:
        """Baseline key: rule + file (line numbers drift too easily)."""
        return f"{self.rule} {self.path.relative_to(REPO)}"

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------
# Shared helpers.
# --------------------------------------------------------------------


def unit_hint(name: str) -> str | None:
    """Infer the unit of an identifier from its trailing word."""
    bare = name.rstrip("_")
    for suffix, unit in UNIT_SUFFIXES.items():
        if bare == suffix or bare.endswith("_" + suffix):
            return unit
    return None


def strip_comments(text: str) -> str:
    """Blank out comments/strings, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif text[i] == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('""' + " " * (j - i - 2))
            i = j
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def public_headers() -> list[Path]:
    paths = []
    for subdir in PUBLIC_HEADER_DIRS:
        paths += sorted((SRC / subdir).glob("*.h"))
    return paths


def source_files() -> list[Path]:
    return sorted(p for p in SRC.rglob("*") if p.suffix in {".h", ".cc"})


# --------------------------------------------------------------------
# Textual engine.
# --------------------------------------------------------------------

RAW_PARAM_RE = re.compile(
    r"(?:^|[(,])\s*(?:const\s+)?(?P<type>"
    + "|".join(RAW_INT_TYPES)
    + r")\s+(?P<name>[a-z]\w*_(?:tokens|bytes|blocks|positions))\s*[,)=]"
)

TRY_DISCARD_RE = re.compile(
    r"^\s*(?:\w+(?:\.|->))*(?P<callee>try_\w+)\s*\("
)

VALUE_UNWRAP_RE = re.compile(r"(?P<recv>[A-Za-z_]\w*)\s*(?:\(\s*\))?\.value\s*\(\)")

ARITH_RE = re.compile(r"[-+*/%]")


def textual_r1(path: Path, text: str) -> list[Finding]:
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in RAW_PARAM_RE.finditer(line):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "R1",
                    f"raw integer parameter '{m.group('name')}' in a "
                    "public header; take units::"
                    f"{unit_hint(m.group('name'))} instead",
                )
            )
    return findings


def textual_r2(path: Path, text: str) -> list[Finding]:
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = TRY_DISCARD_RE.match(line)
        if not m:
            continue
        # A full-statement call (ends with ';' and opens at statement
        # position) discards the result.  Anything consuming it --
        # assignment, return, condition, cast -- fails the regex above
        # because the call is then not the first token run.
        if line.rstrip().endswith(";") and "=" not in line:
            findings.append(
                Finding(
                    path,
                    lineno,
                    "R2",
                    f"result of '{m.group('callee')}' is discarded; "
                    "a failed try_* is an admission/allocation signal",
                )
            )
    return findings


def textual_r3(path: Path, text: str) -> list[Finding]:
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "units::" in line:
            continue  # Named helper on this line: sanctioned crossing.
        units_seen = {}
        for m in VALUE_UNWRAP_RE.finditer(line):
            unit = unit_hint(m.group("recv"))
            if unit:
                units_seen.setdefault(unit, m.group("recv"))
        if len(units_seen) >= 2 and ARITH_RE.search(line):
            pair = " and ".join(sorted(units_seen))
            findings.append(
                Finding(
                    path,
                    lineno,
                    "R3",
                    f"arithmetic mixes .value() unwraps of {pair}; "
                    "use a units:: conversion helper",
                )
            )
    return findings


def textual_r4(path: Path, text: str, cls: str,
               audited: set[str]) -> list[Finding]:
    """Scan audited ``cls`` method bodies in ``path`` for .value()."""
    findings = []
    lines = text.splitlines()
    func_re = re.compile(rf"{cls}::(?P<name>\w+)\s*\(")
    i = 0
    while i < len(lines):
        m = func_re.search(lines[i])
        if not m or m.group("name") not in audited:
            i += 1
            continue
        # Find the opening brace of the definition, then walk the
        # balanced body.  Declarations (no brace before ';') skip.
        depth = 0
        opened = False
        j = i
        while j < len(lines):
            for ch in lines[j]:
                if not opened and ch == ";" and depth == 0:
                    j = None  # Declaration only.
                    break
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if j is None:
                break
            if opened and ".value(" in lines[j]:
                findings.append(
                    Finding(
                        path,
                        j + 1,
                        "R4",
                        f".value() inside audited function "
                        f"'{cls}::{m.group('name')}'; admission and "
                        "request-lifecycle accounting must stay "
                        "unit-typed (use units:: helpers)",
                    )
                )
            if opened and depth == 0:
                break
            j += 1
        i = (j if j is not None else i) + 1
    return findings


def run_textual() -> list[Finding]:
    findings: list[Finding] = []
    for path in public_headers():
        text = strip_comments(path.read_text(encoding="utf-8"))
        findings += textual_r1(path, text)
    for path in source_files():
        text = strip_comments(path.read_text(encoding="utf-8"))
        findings += textual_r2(path, text)
        findings += textual_r3(path, text)
    for path, (cls, audited) in R4_AUDITED.items():
        findings += textual_r4(
            path,
            strip_comments(path.read_text(encoding="utf-8")),
            cls,
            audited,
        )
    return findings


# --------------------------------------------------------------------
# AST engine (libclang).
# --------------------------------------------------------------------


def load_cindex():
    try:
        from clang import cindex
    except ImportError:
        return None
    for lib in (
        None,  # Whatever the bindings find on their own.
        "libclang-14.so.1",
        "libclang.so.1",
        "libclang.so",
    ):
        try:
            if lib is not None:
                cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:
            # Reset so the next candidate can be configured.
            cindex.Config.loaded = False
            continue
    return None


CLANG_ARGS = ["-std=c++20", "-x", "c++", f"-I{SRC}"]

INT_TYPE_KINDS = None  # Filled in lazily from cindex.TypeKind.


def _int_kinds(cindex):
    global INT_TYPE_KINDS
    if INT_TYPE_KINDS is None:
        tk = cindex.TypeKind
        INT_TYPE_KINDS = {
            tk.INT,
            tk.UINT,
            tk.LONG,
            tk.ULONG,
            tk.LONGLONG,
            tk.ULONGLONG,
            tk.SHORT,
            tk.USHORT,
        }
    return INT_TYPE_KINDS


def _in_file(node, path: Path) -> bool:
    loc = node.location
    return loc.file is not None and Path(loc.file.name) == path


def ast_r1(cindex, tu, path: Path) -> list[Finding]:
    findings = []
    ck = cindex.CursorKind

    def visit(node, access_public: bool):
        if node.kind in (ck.CLASS_DECL, ck.STRUCT_DECL):
            default_public = node.kind == ck.STRUCT_DECL
            current = default_public
            for child in node.get_children():
                if child.kind == ck.CXX_ACCESS_SPEC_DECL:
                    current = (
                        child.access_specifier
                        == cindex.AccessSpecifier.PUBLIC
                    )
                else:
                    visit(child, current)
            return
        if node.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL, ck.CONSTRUCTOR):
            if access_public and _in_file(node, path):
                for param in node.get_arguments():
                    name = param.spelling
                    if not name or unit_hint(name) is None:
                        continue
                    canon = param.type.get_canonical()
                    if canon.kind in _int_kinds(cindex):
                        findings.append(
                            Finding(
                                path,
                                param.location.line,
                                "R1",
                                "raw integer parameter "
                                f"'{name}' in a public header; take "
                                f"units::{unit_hint(name)} instead",
                            )
                        )
            return
        for child in node.get_children():
            visit(child, access_public)

    visit(tu.cursor, True)
    return findings


def ast_r2(cindex, tu, path: Path) -> list[Finding]:
    findings = []
    ck = cindex.CursorKind

    def visit(node):
        if node.kind == ck.COMPOUND_STMT:
            for child in node.get_children():
                callee = child
                # An expression-statement call appears as a direct
                # CALL_EXPR child of the compound statement.
                if callee.kind == ck.CALL_EXPR and callee.spelling.startswith(
                    "try_"
                ):
                    if _in_file(callee, path):
                        findings.append(
                            Finding(
                                path,
                                callee.location.line,
                                "R2",
                                f"result of '{callee.spelling}' is "
                                "discarded; a failed try_* is an "
                                "admission/allocation signal",
                            )
                        )
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    return findings


def _quantity_tag(type_spelling: str) -> str | None:
    m = re.search(r"Quantity<.*?(\w+)Tag", type_spelling)
    return m.group(1) if m else None


def ast_r3(cindex, tu, path: Path) -> list[Finding]:
    findings = []
    ck = cindex.CursorKind

    def collect_value_units(node, out):
        """Units of every .value() unwrap in a subtree, skipping
        sanctioned helper-call subtrees."""
        if node.kind == ck.CALL_EXPR:
            if node.spelling in CONVERSION_HELPERS:
                return
            if node.spelling == "value":
                children = list(node.get_children())
                if children:
                    base = list(children[0].get_children())
                    spelling = (
                        base[0].type.spelling
                        if base
                        else children[0].type.spelling
                    )
                    tag = _quantity_tag(spelling)
                    if tag:
                        out.add(tag)
        for child in node.get_children():
            collect_value_units(child, out)

    def visit(node):
        if node.kind == ck.BINARY_OPERATOR and _in_file(node, path):
            tokens = {t.spelling for t in node.get_tokens()}
            if tokens & {"+", "-", "*", "/", "%"}:
                units_seen: set[str] = set()
                collect_value_units(node, units_seen)
                if len(units_seen) >= 2:
                    pair = " and ".join(sorted(units_seen))
                    findings.append(
                        Finding(
                            path,
                            node.location.line,
                            "R3",
                            "arithmetic mixes .value() unwraps of "
                            f"{pair}; use a units:: conversion helper",
                        )
                    )
                    return  # Don't re-report nested operators.
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    return findings


def ast_r4(cindex, tu, path: Path, cls: str,
           audited: set[str]) -> list[Finding]:
    findings = []
    ck = cindex.CursorKind

    def has_value_call(node, out):
        if node.kind == ck.CALL_EXPR and node.spelling == "value":
            out.append(node.location.line)
        for child in node.get_children():
            has_value_call(child, out)

    def in_class(node) -> bool:
        parent = node.semantic_parent
        return parent is not None and parent.spelling == cls

    def visit(node):
        if (
            node.kind == ck.CXX_METHOD
            and node.spelling in audited
            and node.is_definition()
            and in_class(node)
            and _in_file(node, path)
        ):
            lines: list[int] = []
            has_value_call(node, lines)
            for line in lines:
                findings.append(
                    Finding(
                        path,
                        line,
                        "R4",
                        ".value() inside audited function "
                        f"'{cls}::{node.spelling}'; admission and "
                        "request-lifecycle accounting must stay "
                        "unit-typed (use units:: helpers)",
                    )
                )
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    return findings


def run_ast(cindex) -> list[Finding]:
    index = cindex.Index.create()
    findings: list[Finding] = []
    parse_opts = cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES

    for path in public_headers():
        tu = index.parse(str(path), CLANG_ARGS, options=parse_opts)
        findings += ast_r1(cindex, tu, path)

    for path in sorted(SRC.rglob("*.cc")):
        tu = index.parse(str(path), CLANG_ARGS)
        findings += ast_r2(cindex, tu, path)
        findings += ast_r3(cindex, tu, path)
        if path in R4_AUDITED:
            cls, audited = R4_AUDITED[path]
            findings += ast_r4(cindex, tu, path, cls, audited)
    return findings


# --------------------------------------------------------------------
# Baseline + driver.
# --------------------------------------------------------------------


def load_baseline(path: Path) -> set[str]:
    if not path.exists():
        return set()
    keys = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--require-libclang",
        action="store_true",
        help="fail (exit 2) if libclang is unavailable instead of "
        "falling back to the textual engine (CI uses this)",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="also write findings to this file (CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE,
        help="accepted-findings file to diff against "
        "(default: tools/mugi_check_baseline.txt)",
    )
    args = parser.parse_args()

    cindex = load_cindex()
    if cindex is None and args.require_libclang:
        print(
            "mugi-check: libclang (python3-clang) unavailable but "
            "--require-libclang was given",
            file=sys.stderr,
        )
        return 2

    engine = "ast" if cindex is not None else "textual"
    findings = run_ast(cindex) if cindex else run_textual()

    baseline = load_baseline(args.baseline)
    new = [f for f in findings if f.key() not in baseline]

    report_lines = [str(f) for f in findings]
    if args.report:
        args.report.write_text(
            "\n".join(report_lines) + ("\n" if report_lines else ""),
            encoding="utf-8",
        )

    if new:
        print(f"mugi-check ({engine}): {len(new)} new finding(s):")
        for f in new:
            print(f"  {f}")
        print(
            "\nunit-safety conventions regressed; fix the sites above "
            "(or, for a deliberate exception, add the 'Rn path' key "
            "to tools/mugi_check_baseline.txt with a comment)."
        )
        return 1
    suppressed = len(findings) - len(new)
    extra = f" ({suppressed} baselined)" if suppressed else ""
    print(f"mugi-check ({engine}): clean{extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
